package interp

import (
	"testing"

	"uu/internal/ir"
)

// TestKindMemoryMatchesTyped pins LoadKind/StoreKind to the typed
// Load/Store they shadow: identical bytes, identical round-tripped
// values, and ok=false exactly where the typed variants error.
func TestKindMemoryMatchesTyped(t *testing.T) {
	types := []*ir.Type{ir.I1, ir.I8, ir.I32, ir.I64, ir.F32, ir.F64, ir.PointerTo(ir.I64)}
	vals := []Value{
		IntVal(0), IntVal(1), IntVal(-1), IntVal(0x7Eadbeef),
		FloatVal(0), FloatVal(-1.5), FloatVal(3.25e10),
	}
	for _, typ := range types {
		for _, v := range vals {
			a := NewMemory(64)
			b := NewMemory(64)
			if err := a.Store(typ, 8, v); err != nil {
				t.Fatalf("%s: Store: %v", typ, err)
			}
			if !b.StoreKind(typ.Kind, typ.Size(), 8, v) {
				t.Fatalf("%s: StoreKind refused an in-bounds store", typ)
			}
			for i := range a.Data {
				if a.Data[i] != b.Data[i] {
					t.Fatalf("%s %+v: byte %d differs: Store=%#x StoreKind=%#x", typ, v, i, a.Data[i], b.Data[i])
				}
			}
			want, err := a.Load(typ, 8)
			if err != nil {
				t.Fatalf("%s: Load: %v", typ, err)
			}
			got, ok := b.LoadKind(typ.Kind, typ.Size(), 8)
			if !ok {
				t.Fatalf("%s: LoadKind refused an in-bounds load", typ)
			}
			if got != want {
				t.Fatalf("%s %+v: LoadKind=%+v Load=%+v", typ, v, got, want)
			}
		}
	}
}

func TestKindMemoryBounds(t *testing.T) {
	m := NewMemory(16)
	cases := []struct{ size, addr int64 }{
		{8, -1},        // negative address
		{8, 9},         // tail past the end
		{8, 16},        // at the end
		{1, 16},        // one past the last byte
		{8, 1<<62 + 8}, // overflow-adjacent
	}
	for _, c := range cases {
		if _, ok := m.LoadKind(ir.KindI64, c.size, c.addr); ok {
			t.Errorf("LoadKind(size=%d, addr=%d) accepted an out-of-bounds access", c.size, c.addr)
		}
		if m.StoreKind(ir.KindI64, c.size, c.addr, IntVal(1)) {
			t.Errorf("StoreKind(size=%d, addr=%d) accepted an out-of-bounds access", c.size, c.addr)
		}
	}
	// Unsupported kind: report false, do not panic.
	if _, ok := m.LoadKind(ir.KindVoid, 8, 0); ok {
		t.Error("LoadKind(void) reported ok")
	}
	if m.StoreKind(ir.KindVoid, 8, 0, IntVal(1)) {
		t.Error("StoreKind(void) reported ok")
	}
}
