// Package interp is a reference interpreter for the IR. It executes one
// function instance (one "thread") sequentially against a byte-addressable
// memory, with the GPU geometry intrinsics supplied by the environment.
//
// The interpreter is the semantic oracle of the repository: transformation
// tests run the same function before and after a pass on random inputs and
// require identical results and memory, and the benchmark harness validates
// every optimized kernel against it.
package interp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"uu/internal/ir"
)

// ErrStepBudget reports that a thread executed more instructions than the
// step budget allows — an infrastructure condition (runaway loop, budget
// too small for the kernel), not a wrong-answer miscompile. Match with
// errors.Is so callers (the fuzz oracle's triage, the serve daemon) can
// classify it separately from genuine differential mismatches.
var ErrStepBudget = errors.New("step budget exhausted")

// Value is a runtime scalar. Integers (including i1 and pointers) live in I;
// floats in F.
type Value struct {
	I int64
	F float64
}

// IntVal returns an integer/pointer runtime value.
func IntVal(v int64) Value { return Value{I: v} }

// FloatVal returns a floating-point runtime value.
func FloatVal(v float64) Value { return Value{F: v} }

// Memory is the simulated flat device memory.
type Memory struct {
	Data []byte
}

// NewMemory allocates a zeroed memory of the given size.
func NewMemory(size int64) *Memory { return &Memory{Data: make([]byte, size)} }

// Load reads a value of type t at byte address addr.
func (m *Memory) Load(t *ir.Type, addr int64) (Value, error) {
	if addr < 0 || addr+t.Size() > int64(len(m.Data)) {
		return Value{}, fmt.Errorf("interp: load out of bounds: addr=%d size=%d mem=%d", addr, t.Size(), len(m.Data))
	}
	switch t.Kind {
	case ir.KindI1, ir.KindI8:
		return IntVal(int64(int8(m.Data[addr]))), nil
	case ir.KindI32:
		return IntVal(int64(int32(binary.LittleEndian.Uint32(m.Data[addr:])))), nil
	case ir.KindI64, ir.KindPtr:
		return IntVal(int64(binary.LittleEndian.Uint64(m.Data[addr:]))), nil
	case ir.KindF32:
		return FloatVal(float64(math.Float32frombits(binary.LittleEndian.Uint32(m.Data[addr:])))), nil
	case ir.KindF64:
		return FloatVal(math.Float64frombits(binary.LittleEndian.Uint64(m.Data[addr:]))), nil
	}
	return Value{}, fmt.Errorf("interp: load of unsupported type %s", t)
}

// Store writes a value of type t at byte address addr.
func (m *Memory) Store(t *ir.Type, addr int64, v Value) error {
	if addr < 0 || addr+t.Size() > int64(len(m.Data)) {
		return fmt.Errorf("interp: store out of bounds: addr=%d size=%d mem=%d", addr, t.Size(), len(m.Data))
	}
	switch t.Kind {
	case ir.KindI1, ir.KindI8:
		m.Data[addr] = byte(v.I)
	case ir.KindI32:
		binary.LittleEndian.PutUint32(m.Data[addr:], uint32(v.I))
	case ir.KindI64, ir.KindPtr:
		binary.LittleEndian.PutUint64(m.Data[addr:], uint64(v.I))
	case ir.KindF32:
		binary.LittleEndian.PutUint32(m.Data[addr:], math.Float32bits(float32(v.F)))
	case ir.KindF64:
		binary.LittleEndian.PutUint64(m.Data[addr:], math.Float64bits(v.F))
	default:
		return fmt.Errorf("interp: store of unsupported type %s", t)
	}
	return nil
}

// LoadKind is the hot-path variant of Load for callers that have
// pre-decoded the type: k and size are t.Kind and t.Size(). It reports
// ok=false instead of building an error, so the success path stays free
// of allocations. Unsupported kinds also report false.
func (m *Memory) LoadKind(k ir.Kind, size, addr int64) (Value, bool) {
	if addr < 0 || addr+size > int64(len(m.Data)) {
		return Value{}, false
	}
	switch k {
	case ir.KindI1, ir.KindI8:
		return IntVal(int64(int8(m.Data[addr]))), true
	case ir.KindI32:
		return IntVal(int64(int32(binary.LittleEndian.Uint32(m.Data[addr:])))), true
	case ir.KindI64, ir.KindPtr:
		return IntVal(int64(binary.LittleEndian.Uint64(m.Data[addr:]))), true
	case ir.KindF32:
		return FloatVal(float64(math.Float32frombits(binary.LittleEndian.Uint32(m.Data[addr:])))), true
	case ir.KindF64:
		return FloatVal(math.Float64frombits(binary.LittleEndian.Uint64(m.Data[addr:]))), true
	}
	return Value{}, false
}

// StoreKind is the hot-path variant of Store; see LoadKind.
func (m *Memory) StoreKind(k ir.Kind, size, addr int64, v Value) bool {
	if addr < 0 || addr+size > int64(len(m.Data)) {
		return false
	}
	switch k {
	case ir.KindI1, ir.KindI8:
		m.Data[addr] = byte(v.I)
	case ir.KindI32:
		binary.LittleEndian.PutUint32(m.Data[addr:], uint32(v.I))
	case ir.KindI64, ir.KindPtr:
		binary.LittleEndian.PutUint64(m.Data[addr:], uint64(v.I))
	case ir.KindF32:
		binary.LittleEndian.PutUint32(m.Data[addr:], math.Float32bits(float32(v.F)))
	case ir.KindF64:
		binary.LittleEndian.PutUint64(m.Data[addr:], math.Float64bits(v.F))
	default:
		return false
	}
	return true
}

// SetF64 stores a float64 at index i of an array starting at base.
func (m *Memory) SetF64(base int64, i int64, v float64) {
	binary.LittleEndian.PutUint64(m.Data[base+8*i:], math.Float64bits(v))
}

// F64 reads a float64 at index i of an array starting at base.
func (m *Memory) F64(base int64, i int64) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(m.Data[base+8*i:]))
}

// SetI64 stores an int64 at index i of an array starting at base.
func (m *Memory) SetI64(base int64, i int64, v int64) {
	binary.LittleEndian.PutUint64(m.Data[base+8*i:], uint64(v))
}

// I64 reads an int64 at index i of an array starting at base.
func (m *Memory) I64(base int64, i int64) int64 {
	return int64(binary.LittleEndian.Uint64(m.Data[base+8*i:]))
}

// SetI32 stores an int32 at index i of an array starting at base.
func (m *Memory) SetI32(base int64, i int64, v int32) {
	binary.LittleEndian.PutUint32(m.Data[base+4*i:], uint32(v))
}

// I32 reads an int32 at index i of an array starting at base.
func (m *Memory) I32(base int64, i int64) int32 {
	return int32(binary.LittleEndian.Uint32(m.Data[base+4*i:]))
}

// SetF32 stores a float32 at index i of an array starting at base.
func (m *Memory) SetF32(base int64, i int64, v float32) {
	binary.LittleEndian.PutUint32(m.Data[base+4*i:], math.Float32bits(v))
}

// F32 reads a float32 at index i of an array starting at base.
func (m *Memory) F32(base int64, i int64) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(m.Data[base+4*i:]))
}

// Env supplies the GPU geometry intrinsics for one thread.
type Env struct {
	TID    int32 // threadIdx.x
	NTID   int32 // blockDim.x
	CTAID  int32 // blockIdx.x
	NCTAID int32 // gridDim.x
}

// DefaultMaxSteps bounds interpretation to catch runaway loops in tests.
const DefaultMaxSteps = 50_000_000

// Counters tallies dynamic execution statistics of one Run.
type Counters struct {
	Steps int64
	Ops   map[ir.Op]int64
}

// Run executes f with the given arguments (one per parameter; pointer
// parameters take byte offsets into mem). It returns the return value (zero
// Value for void) and an error on traps or step exhaustion.
func Run(f *ir.Function, args []Value, mem *Memory, env Env) (Value, error) {
	return RunSteps(f, args, mem, env, DefaultMaxSteps, nil)
}

// RunCounted is Run, additionally tallying dynamically executed operations
// into ctr (which must have a non-nil Ops map).
func RunCounted(f *ir.Function, args []Value, mem *Memory, env Env, ctr *Counters) (Value, error) {
	return RunSteps(f, args, mem, env, DefaultMaxSteps, ctr)
}

// RunSteps is Run with an explicit step budget.
func RunSteps(f *ir.Function, args []Value, mem *Memory, env Env, maxSteps int64, ctr *Counters) (Value, error) {
	if len(args) != len(f.Params) {
		return Value{}, fmt.Errorf("interp: %s expects %d args, got %d", f.Name, len(f.Params), len(args))
	}
	vals := map[ir.Value]Value{}
	for i, p := range f.Params {
		vals[p] = args[i]
	}
	eval := func(v ir.Value) Value {
		switch x := v.(type) {
		case *ir.Const:
			if x.Typ.IsFloat() {
				return FloatVal(x.Float)
			}
			return IntVal(x.Int)
		default:
			return vals[v]
		}
	}

	// Thread-private alloca slots live at the top of a small shadow stack
	// appended beyond the caller's memory; to keep addressing simple we give
	// each alloca its own tiny buffer via a map.
	allocaMem := map[*ir.Instr]*[8]byte{}

	var steps int64
	block := f.Entry()
	var prev *ir.Block
	for {
		// Phis evaluate simultaneously on entry.
		phis := block.Phis()
		if len(phis) > 0 {
			if prev == nil {
				return Value{}, fmt.Errorf("interp: phi in entry block %s", block.Name)
			}
			tmp := make([]Value, len(phis))
			for i, phi := range phis {
				inc := phi.PhiIncoming(prev)
				if inc == nil {
					return Value{}, fmt.Errorf("interp: phi %s has no incoming for %s", phi.Ref(), prev.Name)
				}
				tmp[i] = eval(inc)
			}
			for i, phi := range phis {
				vals[phi] = tmp[i]
			}
		}
		for _, in := range block.Instrs()[len(phis):] {
			steps++
			if steps > maxSteps {
				return Value{}, fmt.Errorf("interp: %w in %s", ErrStepBudget, f.Name)
			}
			if ctr != nil {
				ctr.Steps++
				ctr.Ops[in.Op]++
			}
			switch in.Op {
			case ir.OpBr:
				prev, block = block, in.BlockArg(0)
			case ir.OpCondBr:
				if eval(in.Arg(0)).I != 0 {
					prev, block = block, in.BlockArg(0)
				} else {
					prev, block = block, in.BlockArg(1)
				}
			case ir.OpRet:
				if in.NumArgs() == 1 {
					return eval(in.Arg(0)), nil
				}
				return Value{}, nil
			case ir.OpAlloca:
				buf := &[8]byte{}
				allocaMem[in] = buf
				vals[in] = IntVal(-int64(len(allocaMem)) * 16) // sentinel address
			case ir.OpLoad:
				addr := eval(in.Arg(0)).I
				if base, ok := allocaBase(in.Arg(0), allocaMem); ok {
					vals[in] = loadLocal(in.Type(), base)
					continue
				}
				v, err := mem.Load(in.Type(), addr)
				if err != nil {
					return Value{}, err
				}
				vals[in] = v
			case ir.OpStore:
				addr := eval(in.Arg(1)).I
				if base, ok := allocaBase(in.Arg(1), allocaMem); ok {
					storeLocal(in.Arg(0).Type(), base, eval(in.Arg(0)))
					continue
				}
				if err := mem.Store(in.Arg(0).Type(), addr, eval(in.Arg(0))); err != nil {
					return Value{}, err
				}
			case ir.OpGEP:
				base := eval(in.Arg(0)).I
				idx := eval(in.Arg(1)).I
				vals[in] = IntVal(base + idx*in.Type().Elem.Size())
			case ir.OpBarrier:
				// Sequential semantics: no-op for a single thread.
			case ir.OpTID:
				vals[in] = IntVal(int64(env.TID))
			case ir.OpNTID:
				vals[in] = IntVal(int64(env.NTID))
			case ir.OpCTAID:
				vals[in] = IntVal(int64(env.CTAID))
			case ir.OpNCTAID:
				vals[in] = IntVal(int64(env.NCTAID))
			default:
				v, err := evalPure(in, eval)
				if err != nil {
					return Value{}, err
				}
				vals[in] = v
			}
			if in.IsTerminator() {
				break
			}
		}
	}
}

func allocaBase(ptr ir.Value, allocaMem map[*ir.Instr]*[8]byte) (*[8]byte, bool) {
	in, ok := ptr.(*ir.Instr)
	if !ok || in.Op != ir.OpAlloca {
		return nil, false
	}
	b, ok := allocaMem[in]
	return b, ok
}

func loadLocal(t *ir.Type, buf *[8]byte) Value {
	switch t.Kind {
	case ir.KindF32:
		return FloatVal(float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[:]))))
	case ir.KindF64:
		return FloatVal(math.Float64frombits(binary.LittleEndian.Uint64(buf[:])))
	default:
		return IntVal(int64(binary.LittleEndian.Uint64(buf[:])))
	}
}

func storeLocal(t *ir.Type, buf *[8]byte, v Value) {
	switch t.Kind {
	case ir.KindF32:
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(float32(v.F)))
		binary.LittleEndian.PutUint32(buf[4:], 0)
	case ir.KindF64:
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.F))
	default:
		binary.LittleEndian.PutUint64(buf[:], uint64(v.I))
	}
}

// evalPure evaluates a side-effect-free scalar instruction.
func evalPure(in *ir.Instr, eval func(ir.Value) Value) (Value, error) {
	t := in.Type()
	switch in.Op {
	case ir.OpSelect:
		if eval(in.Arg(0)).I != 0 {
			return eval(in.Arg(1)), nil
		}
		return eval(in.Arg(2)), nil
	case ir.OpICmp, ir.OpFCmp:
		a, b := eval(in.Arg(0)), eval(in.Arg(1))
		var ca, cb *ir.Const
		if in.Op == ir.OpICmp {
			ca, cb = ir.ConstInt(in.Arg(0).Type(), a.I), ir.ConstInt(in.Arg(1).Type(), b.I)
		} else {
			ca, cb = ir.ConstFloat(in.Arg(0).Type(), a.F), ir.ConstFloat(in.Arg(1).Type(), b.F)
		}
		r := ir.FoldCompare(in.Op, in.Pred, ca, cb)
		if r == nil {
			return Value{}, fmt.Errorf("interp: bad compare %s", in)
		}
		return IntVal(r.Int), nil
	case ir.OpTrunc, ir.OpZExt, ir.OpSExt, ir.OpSIToFP, ir.OpFPToSI, ir.OpFPExt, ir.OpFPTrunc:
		a := eval(in.Arg(0))
		var c *ir.Const
		if in.Arg(0).Type().IsFloat() {
			c = ir.ConstFloat(in.Arg(0).Type(), a.F)
		} else {
			c = ir.ConstInt(in.Arg(0).Type(), a.I)
		}
		r := ir.FoldUnary(in.Op, c, t)
		if r == nil {
			// fptosi of NaN/Inf: define as 0 like the hardware's saturating
			// behaviour approximation.
			return Value{}, nil
		}
		if t.IsFloat() {
			return FloatVal(r.Float), nil
		}
		return IntVal(r.Int), nil
	case ir.OpSqrt, ir.OpFAbs, ir.OpExp, ir.OpLog, ir.OpSin, ir.OpCos, ir.OpFloor:
		a := eval(in.Arg(0)).F
		var r float64
		switch in.Op {
		case ir.OpSqrt:
			r = math.Sqrt(a)
		case ir.OpFAbs:
			r = math.Abs(a)
		case ir.OpExp:
			r = math.Exp(a)
		case ir.OpLog:
			r = math.Log(a)
		case ir.OpSin:
			r = math.Sin(a)
		case ir.OpCos:
			r = math.Cos(a)
		case ir.OpFloor:
			r = math.Floor(a)
		}
		if t == ir.F32 {
			r = float64(float32(r))
		}
		return FloatVal(r), nil
	}
	// Binary arithmetic via the shared folder, with division-by-zero defined
	// as zero (GPU integer division does not trap; any fixed value works as
	// long as the simulator agrees).
	a, b := eval(in.Arg(0)), eval(in.Arg(1))
	if t.IsFloat() || in.Op == ir.OpPow || in.Op == ir.OpFMin || in.Op == ir.OpFMax {
		r := ir.FoldBinary(in.Op, ir.ConstFloat(in.Arg(0).Type(), a.F), ir.ConstFloat(in.Arg(1).Type(), b.F))
		if r == nil {
			return Value{}, fmt.Errorf("interp: cannot evaluate %s", in)
		}
		v := r.Float
		if t == ir.F32 {
			v = float64(float32(v))
		}
		return FloatVal(v), nil
	}
	switch in.Op {
	case ir.OpSDiv, ir.OpUDiv, ir.OpSRem, ir.OpURem:
		if b.I == 0 {
			return IntVal(0), nil
		}
	}
	r := ir.FoldBinary(in.Op, ir.ConstInt(t, a.I), ir.ConstInt(t, b.I))
	if r == nil {
		return Value{}, fmt.Errorf("interp: cannot evaluate %s", in)
	}
	return IntVal(r.Int), nil
}
