package interp

import (
	"testing"
	"testing/quick"

	"uu/internal/ir"
)

func TestMemoryAccessors(t *testing.T) {
	m := NewMemory(64)
	m.SetF64(0, 1, 3.5)
	if m.F64(0, 1) != 3.5 {
		t.Fatalf("f64 roundtrip")
	}
	m.SetI64(16, 0, -7)
	if m.I64(16, 0) != -7 {
		t.Fatalf("i64 roundtrip")
	}
	m.SetI32(32, 1, -9)
	if m.I32(32, 1) != -9 {
		t.Fatalf("i32 roundtrip")
	}
	m.SetF32(40, 0, 1.25)
	if m.F32(40, 0) != 1.25 {
		t.Fatalf("f32 roundtrip")
	}
}

func TestOutOfBounds(t *testing.T) {
	m := NewMemory(8)
	if _, err := m.Load(ir.F64, 8); err == nil {
		t.Fatalf("no error for OOB load")
	}
	if err := m.Store(ir.I64, -1, IntVal(0)); err == nil {
		t.Fatalf("no error for negative store")
	}
}

func TestStepBudget(t *testing.T) {
	f := ir.NewFunction("spin", ir.Void)
	entry := f.NewBlock("entry")
	loop := f.NewBlock("loop")
	b := ir.NewBuilder(entry)
	b.Br(loop)
	b.SetBlock(loop)
	b.Br(loop)
	if _, err := RunSteps(f, nil, NewMemory(0), Env{}, 1000, nil); err == nil {
		t.Fatalf("infinite loop not caught")
	}
}

func TestGeometryIntrinsics(t *testing.T) {
	f := ir.NewFunction("g", ir.Void)
	out := f.AddParam("out", ir.PointerTo(ir.I32), true)
	entry := f.NewBlock("entry")
	b := ir.NewBuilder(entry)
	tid := b.TID()
	ntid := b.NTID()
	cta := b.CTAID()
	ncta := b.NCTAID()
	s1 := b.Mul(cta, ntid)
	s2 := b.Add(s1, tid)
	s3 := b.Add(s2, ncta)
	b.Store(s3, b.GEP(out, ir.ConstInt(ir.I32, 0)))
	b.Ret(nil)
	mem := NewMemory(4)
	env := Env{TID: 3, NTID: 64, CTAID: 2, NCTAID: 10}
	if _, err := Run(f, []Value{IntVal(0)}, mem, env); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := mem.I32(0, 0); got != 2*64+3+10 {
		t.Fatalf("geometry = %d", got)
	}
}

// Property: the interpreter's pure evaluation agrees with the shared
// constant folder for arbitrary i64 inputs.
func TestQuickEvalMatchesFold(t *testing.T) {
	ops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpSMin, ir.OpSMax}
	prop := func(a, b int64, opIdx uint8) bool {
		op := ops[int(opIdx)%len(ops)]
		f := ir.NewFunction("p", ir.I64)
		entry := f.NewBlock("entry")
		bld := ir.NewBuilder(entry)
		pa := f.AddParam("a", ir.I64, false)
		pb := f.AddParam("b", ir.I64, false)
		r := bld.Bin(op, pa, pb)
		bld.Ret(r)
		got, err := Run(f, []Value{IntVal(a), IntVal(b)}, NewMemory(0), Env{})
		if err != nil {
			return false
		}
		want := ir.FoldBinary(op, ir.ConstInt(ir.I64, a), ir.ConstInt(ir.I64, b))
		return want != nil && got.I == want.Int
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: float arithmetic through the interpreter matches Go semantics
// including f32 rounding.
func TestQuickFloat32Rounding(t *testing.T) {
	prop := func(a, b float32) bool {
		f := ir.NewFunction("p", ir.F32)
		entry := f.NewBlock("entry")
		bld := ir.NewBuilder(entry)
		pa := f.AddParam("a", ir.F32, false)
		pb := f.AddParam("b", ir.F32, false)
		r := bld.FMul(pa, pb)
		bld.Ret(r)
		got, err := Run(f, []Value{FloatVal(float64(a)), FloatVal(float64(b))}, NewMemory(0), Env{})
		if err != nil {
			return false
		}
		want := float64(a * b)
		return got.F == want || (got.F != got.F && want != want) // NaN-safe
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: memory round-trips arbitrary values at arbitrary (aligned)
// offsets.
func TestQuickMemoryRoundTrip(t *testing.T) {
	m := NewMemory(4096)
	prop := func(idx uint16, v int64, fv float64) bool {
		i := int64(idx) % 500
		m.SetI64(0, i, v)
		if m.I64(0, i) != v {
			return false
		}
		m.SetF64(0, i, fv)
		got := m.F64(0, i)
		return got == fv || (got != got && fv != fv)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
