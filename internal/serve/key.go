// Package serve is the compile-as-a-service daemon core: a long-running
// HTTP/JSON server that accepts MiniCU kernels (or raw IR, or suite
// benchmark names) plus device and pipeline configuration, compiles and
// simulates them on a bounded worker pool, and returns the measured
// metrics. Robustness is the point, not an afterthought: per-request
// deadlines cancel work at pass and warp-block boundaries, panics are
// contained per request, overload is shed with 429 + Retry-After instead
// of queueing unboundedly, duplicate submissions coalesce onto one
// compilation through a content-addressed result cache, and SIGTERM drains
// gracefully. cmd/uud wraps this package as a daemon; cmd/uuclient is the
// matching load client.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"uu/internal/core"
	"uu/internal/gpusim"
	"uu/internal/ir"
	"uu/internal/irparse"
	"uu/internal/pipeline"
)

// CanonicalIR renders f in a name-independent canonical form: the function,
// its parameters, its blocks, and every value-producing instruction are
// renamed positionally before printing, so two kernels that differ only in
// the names the frontend (or a client) chose print identically. The result
// is verified to be a print→parse→print fixed point of the textual IR
// syntax — the property serve's content-addressed cache keys depend on, and
// the first line of defense against hashing IR the rest of the system
// cannot actually ingest. f is not mutated.
func CanonicalIR(f *ir.Function) (string, error) {
	c := ir.Clone(f)
	c.Name = "k"
	for i, p := range c.Params {
		p.Name = fmt.Sprintf("p%d", i)
	}
	for i, b := range c.Blocks() {
		b.Name = fmt.Sprintf("b%d", i)
	}
	n := 0
	for _, b := range c.Blocks() {
		for _, in := range b.Instrs() {
			if in.Type() != ir.Void {
				in.SetName(fmt.Sprintf("v%d", n))
				n++
			} else {
				in.SetName("")
			}
		}
	}
	text := c.String()
	rt, err := irparse.ParseFunc(text)
	if err != nil {
		return "", fmt.Errorf("serve: canonical IR does not parse back: %w", err)
	}
	if again := rt.String(); again != text {
		return "", fmt.Errorf("serve: canonical IR is not a print/parse fixed point")
	}
	return text, nil
}

// Fingerprint computes the content-addressed cache key of a compile+run
// request. It covers everything that influences the response payload —
// canonical IR, pipeline configuration (config/loop/factor, the resolved
// heuristic parameter set including per-loop profile overrides, plus the
// containment and fault-injection switches), the simulated device, the
// launch geometry, memory size and kernel arguments, and the artifact
// selection (remarks, profile) — and deliberately excludes everything that
// does not: the execution backend and the simulator worker count only
// change how fast the simulator runs, never what it measures, so requests
// differing only there share one cache entry.
//
// The heuristic line hashes the *resolved* parameters (FillDefaults plus the
// canonical override rendering): a request spelling the paper defaults
// explicitly shares the entry of one omitting them — exactly as the pipeline
// treats them — while two requests differing only in measured-profile
// overrides (the PGO feedback channel) always get distinct keys.
func Fingerprint(canonIR string, opts pipeline.Options, dev gpusim.DeviceConfig,
	launch gpusim.Launch, memSize int64, args []int64, chaos string, remarks string, profile bool) string {
	d := dev
	d.Exec = 0 // speed-only: metrics are byte-identical across backends
	h := sha256.New()
	fmt.Fprintf(h, "ir\n%s\n", canonIR)
	fmt.Fprintf(h, "config %s loop %d factor %d contain %t verify %t chaos %q\n",
		opts.Config, opts.LoopID, opts.Factor, opts.Contain, opts.VerifyEachPass, chaos)
	hp := opts.Heuristic.FillDefaults()
	fmt.Fprintf(h, "heuristic c %d umax %d skipdiv %t selective %t overrides %s\n",
		hp.C, hp.UMax, hp.SkipDivergent, hp.Selective, core.OverridesString(hp.Overrides))
	fmt.Fprintf(h, "device %+v\n", d)
	fmt.Fprintf(h, "launch %d %d %d mem %d\n", launch.GridDim, launch.BlockDim, launch.SampleWarps, memSize)
	fmt.Fprintf(h, "args %v\n", args)
	fmt.Fprintf(h, "artifacts remarks %q profile %t\n", remarks, profile)
	return hex.EncodeToString(h.Sum(nil))
}
