package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"uu/internal/remark"
	"uu/internal/telemetry"
)

// Options configures a Server. The zero value picks sensible defaults.
type Options struct {
	// Workers is the compile/simulate pool size; 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the admission queue; a full queue sheds with
	// 429 + Retry-After. 0 means 2*Workers.
	QueueDepth int
	// CacheEntries bounds the LRU result cache; 0 means 256.
	CacheEntries int
	// DefaultDeadline applies to requests without deadline_ms; MaxDeadline
	// caps client-supplied deadlines. 0 means 30s / 2min.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// MaxBodyBytes bounds the request body; oversized bodies return 413.
	// 0 means 1 MiB.
	MaxBodyBytes int64
	// RetryAfter is the hint sent with 429/503 responses; 0 means 1s.
	RetryAfter time.Duration
	// OnCompile, when non-nil, is invoked once per actual pool execution
	// with the request key — the hook the duplicate-submission benchmark
	// uses to assert that N identical requests compile exactly once.
	OnCompile func(key string)
	// Log, when non-nil, receives one line per lifecycle event (start,
	// drain, stats flush).
	Log io.Writer
	// AccessLog, when non-nil, receives one structured JSON line per
	// /compile request, carrying the request ID, outcome, and per-phase
	// timings (see docs/OBSERVABILITY.md).
	AccessLog io.Writer
	// TraceSample enables request-scoped tracing for every N-th /compile
	// request (1 = every request, 0 = off). Sampled traces are kept in a
	// small ring served by GET /trace; any single request can force its
	// own full trace with ?trace=1 regardless of the sample rate.
	TraceSample int
	// DisableTelemetry turns the metrics layer off: no histograms, no
	// gauges, and GET /metrics returns 404. The disabled hot path costs
	// one nil check per record site and zero allocations.
	DisableTelemetry bool
}

func (o *Options) withDefaults() Options {
	d := *o
	if d.Workers <= 0 {
		d.Workers = runtime.GOMAXPROCS(0)
	}
	if d.QueueDepth <= 0 {
		d.QueueDepth = 2 * d.Workers
	}
	if d.CacheEntries <= 0 {
		d.CacheEntries = 256
	}
	if d.DefaultDeadline <= 0 {
		d.DefaultDeadline = 30 * time.Second
	}
	if d.MaxDeadline <= 0 {
		d.MaxDeadline = 2 * time.Minute
	}
	if d.MaxBodyBytes <= 0 {
		d.MaxBodyBytes = 1 << 20
	}
	if d.RetryAfter <= 0 {
		d.RetryAfter = time.Second
	}
	return d
}

// counterNames lists every /stats counter in render order. Each one is
// documented in docs/METRICS.md; TestServeCounterNamesDocumented enforces
// that the list and the docs never drift apart.
var counterNames = []string{
	"serve_requests_total",
	"serve_cache_hits_total",
	"serve_coalesced_total",
	"serve_compiles_total",
	"serve_shed_total",
	"serve_panics_total",
	"serve_deadline_expired_total",
	"serve_canceled_total",
	"serve_malformed_total",
	"serve_failed_total",
}

// counters are the server's monotonic event counts, updated with atomics
// on the hot path and snapshotted for /stats and the drain flush.
type counters struct {
	requests  atomic.Int64 // every POST /compile received
	cacheHits atomic.Int64 // served straight from the LRU cache
	coalesced atomic.Int64 // waited on another request's in-flight compile
	compiles  atomic.Int64 // actual pool executions
	shed      atomic.Int64 // rejected 429 on a full queue
	panics    atomic.Int64 // request executions that panicked (contained)
	deadline  atomic.Int64 // executions canceled by deadline expiry (504)
	canceled  atomic.Int64 // executions canceled otherwise (drain, client gone)
	malformed atomic.Int64 // undecodable, oversized, or invalid requests
	failed    atomic.Int64 // executions failing with a compile/exec error (422)
}

func (c *counters) snapshot() map[string]int64 {
	return map[string]int64{
		"serve_requests_total":         c.requests.Load(),
		"serve_cache_hits_total":       c.cacheHits.Load(),
		"serve_coalesced_total":        c.coalesced.Load(),
		"serve_compiles_total":         c.compiles.Load(),
		"serve_shed_total":             c.shed.Load(),
		"serve_panics_total":           c.panics.Load(),
		"serve_deadline_expired_total": c.deadline.Load(),
		"serve_canceled_total":         c.canceled.Load(),
		"serve_malformed_total":        c.malformed.Load(),
		"serve_failed_total":           c.failed.Load(),
	}
}

// flight is one in-flight compilation: the leader enqueues the work, every
// duplicate request (follower) waits on done without occupying a queue slot
// or pool worker. Waiters are refcounted; when the last one disconnects the
// compute context is canceled, so abandoned work stops at the next pass or
// warp-block boundary — and because errors are never cached, a duplicate
// arriving later simply recompiles.
type flight struct {
	key      string
	done     chan struct{}
	res      *Response
	err      *Error
	waiters  int
	finished bool
	cancel   context.CancelFunc
	// tm carries the pool execution's phase timings (admission wait,
	// compile, simulate); written by the worker before done closes, so
	// every waiter can attribute the compute that produced its result.
	tm phaseTimings
	// tr is the leader's request trace, when the leader is traced: the
	// execution's pipeline and simulator spans land on it.
	tr *remark.Trace
}

// job is one queued pool execution.
type job struct {
	fl       *flight
	sp       *spec
	ctx      context.Context
	enqueued time.Time // admission wait = pickup − enqueued
}

// Server is the daemon core. Create with New, expose via Handler, shut
// down with Drain.
type Server struct {
	opts Options

	baseCtx    context.Context // canceled to abort every in-flight execution
	cancelBase context.CancelFunc

	queue chan *job

	mu      sync.Mutex
	flights map[string]*flight
	cache   *lruCache

	draining atomic.Bool
	inflight sync.WaitGroup // queued-or-running jobs
	workers  sync.WaitGroup

	c counters

	// Observability: the metrics registry (nil when disabled), the
	// request-ID sequence and epoch prefix, the sampled-trace ring, and
	// the access-log serialization lock.
	tel      *serveTelemetry
	reqSeq   atomic.Int64
	idEpoch  string
	traceMu  sync.Mutex
	traces   []storedTrace
	accessMu sync.Mutex
}

// New builds a Server and starts its worker pool.
func New(opts Options) *Server {
	o := opts.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:       o,
		baseCtx:    ctx,
		cancelBase: cancel,
		queue:      make(chan *job, o.QueueDepth),
		flights:    make(map[string]*flight),
		cache:      newLRU(o.CacheEntries),
		idEpoch:    fmt.Sprintf("%06x", time.Now().UnixNano()&0xffffff),
	}
	if !o.DisableTelemetry {
		s.tel = newServeTelemetry(s)
	}
	s.workers.Add(o.Workers)
	for i := 0; i < o.Workers; i++ {
		go s.worker()
	}
	s.logf("serve: %d workers, queue %d, cache %d", o.Workers, o.QueueDepth, o.CacheEntries)
	return s
}

// Handler returns the HTTP mux: POST /compile (append ?trace=1 for a
// request-scoped trace in the response), GET /stats (JSON, including
// per-phase quantiles), GET /metrics (Prometheus text exposition), GET
// /trace (most recent sampled trace, or ?id=<request_id>), and the
// probes — GET /healthz (liveness: 200 while the process runs, drain
// included) and GET /readyz (readiness: flips to 503 during drain).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/compile", s.handleCompile)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	return mux
}

// Drain shuts the server down gracefully: stop admitting work (new
// requests get 503 + Retry-After), let in-flight executions finish until
// ctx expires, then cancel the stragglers and wait for them to unwind.
// The final counter snapshot is flushed to Log and returned.
func (s *Server) Drain(ctx context.Context) map[string]int64 {
	// Set under mu so no leader can inflight.Add after draining is
	// observed false: admission and drain serialize on the same lock.
	s.mu.Lock()
	s.draining.Store(true)
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.cancelBase() // in-flight work stops at its next boundary
		// Workers are exiting now; consume any jobs stranded in the
		// queue ourselves so their waiters (and the inflight count)
		// resolve instead of deadlocking the drain.
		for drained := false; !drained; {
			select {
			case <-done:
				drained = true
			case j := <-s.queue:
				s.c.canceled.Add(1)
				s.finish(j.fl, nil, classify(context.Canceled, "exec-failed"))
				s.inflight.Done()
			}
		}
	}
	s.cancelBase()
	s.workers.Wait()
	snap := s.c.snapshot()
	if s.opts.Log != nil {
		line, _ := json.Marshal(snap)
		fmt.Fprintf(s.opts.Log, "serve: drained, final stats %s\n", line)
	}
	return snap
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// handleHealthz is the liveness probe: 200 for as long as the process
// serves HTTP, drain included — killing a pod mid-drain would lose the
// very work Drain exists to finish.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, 200, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe: it flips to 503 the moment Drain
// begins, so load balancers stop routing new work while /metrics and
// in-flight responses keep flowing.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, &Error{Status: 503, Code: "draining", Msg: "server is draining"}, s.opts.RetryAfter)
		return
	}
	writeJSON(w, 200, map[string]string{"status": "ready"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	flights := len(s.flights)
	cached := s.cache.len()
	s.mu.Unlock()
	stats := map[string]any{
		"counters":      s.c.snapshot(),
		"queue_depth":   len(s.queue),
		"queue_cap":     cap(s.queue),
		"inflight":      flights,
		"cache_entries": cached,
		"draining":      s.draining.Load(),
	}
	if s.tel != nil {
		stats["gauges"] = map[string]int64{
			"serve_inflight_requests":   s.tel.inflightRequests.Value(),
			"serve_inflight_executions": s.tel.inflightExecutions.Value(),
		}
		phases := map[string]any{}
		for name, snap := range s.tel.phaseSnapshots() {
			phases[name] = quantileBlock(snap)
		}
		stats["phases"] = phases
		stats["request"] = quantileBlock(s.tel.request.Snapshot())
	}
	writeJSON(w, 200, stats)
}

// quantileBlock renders one histogram's latency summary for /stats, in
// milliseconds (recorded values are nanoseconds).
func quantileBlock(snap *telemetry.HistSnapshot) map[string]any {
	return map[string]any{
		"count":   snap.Count,
		"mean_ms": snap.Mean() / 1e6,
		"p50_ms":  float64(snap.Quantile(0.50)) / 1e6,
		"p95_ms":  float64(snap.Quantile(0.95)) / 1e6,
		"p99_ms":  float64(snap.Quantile(0.99)) / 1e6,
		"max_ms":  float64(snap.Max) / 1e6,
	}
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	s.c.requests.Add(1)
	st := s.newReqState(r)
	s.tel.requestStarted()
	defer s.tel.requestEnded()
	if r.Method != http.MethodPost {
		st.fail(w, &Error{Status: 405, Code: "bad-request", Msg: "POST only"}, 0)
		return
	}
	if s.draining.Load() {
		st.fail(w, &Error{Status: 503, Code: "draining", Msg: "server is draining"}, s.opts.RetryAfter)
		return
	}

	// Frontend phase: body decode, kernel frontend, fingerprinting.
	tFrontend := time.Now()
	var req Request
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		st.tm.Frontend = time.Since(tFrontend)
		s.c.malformed.Add(1)
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			st.fail(w, &Error{Status: 413, Code: "oversized", Msg: fmt.Sprintf("body exceeds %d bytes", tooBig.Limit)}, 0)
			return
		}
		st.fail(w, &Error{Status: 400, Code: "malformed", Msg: err.Error()}, 0)
		return
	}
	sp, rerr := buildSpec(&req)
	st.tm.Frontend = time.Since(tFrontend)
	st.span("frontend", tFrontend, st.tm.Frontend)
	if rerr != nil {
		s.c.malformed.Add(1)
		st.fail(w, rerr, 0)
		return
	}
	st.key, st.app = sp.key, sp.app

	// Resolve phase — cache and singleflight decisions are one critical
	// section: either the key is cached, or there is a flight to join, or
	// this request becomes the leader of a new one. A leader's resolve
	// phase ends at enqueue (its wait is the admission phase); a
	// follower's runs until the leader's result arrives.
	tResolve := time.Now()
	s.mu.Lock()
	if res, ok := s.cache.get(sp.key); ok {
		s.mu.Unlock()
		s.c.cacheHits.Add(1)
		st.tm.Resolve = time.Since(tResolve)
		st.span("resolve", tResolve, st.tm.Resolve)
		out := *res
		out.Cached = true
		st.exec = &out.execTM // attribute the compute that filled the cache
		st.respond(w, &out)
		return
	}
	fl, joined := s.flights[sp.key]
	if joined {
		fl.waiters++
	} else {
		// Re-check draining inside the admission critical section: a
		// request that raced past the fast-path check must not start a
		// flight (and bump inflight) after Drain began waiting.
		if s.draining.Load() {
			s.mu.Unlock()
			st.fail(w, &Error{Status: 503, Code: "draining", Msg: "server is draining"}, s.opts.RetryAfter)
			return
		}
		fl = &flight{key: sp.key, done: make(chan struct{}), waiters: 1, tr: st.tr}
		s.flights[sp.key] = fl
		s.inflight.Add(1)
	}
	s.mu.Unlock()

	if !joined {
		deadline := s.opts.DefaultDeadline
		if req.DeadlineMs > 0 {
			deadline = time.Duration(req.DeadlineMs) * time.Millisecond
			if deadline > s.opts.MaxDeadline {
				deadline = s.opts.MaxDeadline
			}
		}
		ctx, cancel := context.WithTimeout(s.baseCtx, deadline)
		fl.cancel = cancel
		select {
		case s.queue <- &job{fl: fl, sp: sp, ctx: ctx, enqueued: time.Now()}:
		default:
			// Queue full: shed. The flight fails for every waiter that
			// already joined; Retry-After plus the client's jittered
			// backoff spreads the retry wave.
			s.inflight.Done()
			s.c.shed.Add(1)
			s.finish(fl, nil, &Error{Status: 429, Code: "shed", Msg: "admission queue full"})
		}
		st.tm.Resolve = time.Since(tResolve)
		st.span("resolve", tResolve, st.tm.Resolve)
	} else {
		s.c.coalesced.Add(1)
	}

	select {
	case <-fl.done:
	case <-r.Context().Done():
		// Client gone: leave the flight. The last waiter out cancels the
		// compute so abandoned work stops promptly.
		s.dropWaiter(fl)
		st.disconnected()
		return
	}
	if joined {
		st.tm.Resolve = time.Since(tResolve)
		st.span("resolve", tResolve, st.tm.Resolve)
	}
	st.exec = &fl.tm
	if fl.err != nil {
		// Copy the shared flight error: each waiter's response body is
		// stamped with its own request ID.
		e := *fl.err
		st.fail(w, &e, s.opts.RetryAfter)
		return
	}
	out := *fl.res
	out.Coalesced = joined
	st.respond(w, &out)
}

// dropWaiter unregisters a disconnected waiter; when the last one leaves an
// unfinished flight its compute context is canceled.
func (s *Server) dropWaiter(fl *flight) {
	s.mu.Lock()
	fl.waiters--
	abandon := fl.waiters == 0 && !fl.finished
	s.mu.Unlock()
	if abandon && fl.cancel != nil {
		fl.cancel()
	}
}

// finish completes a flight: record the outcome, cache successes, wake
// every waiter, and retire the key so later duplicates start fresh.
func (s *Server) finish(fl *flight, res *Response, rerr *Error) {
	s.mu.Lock()
	fl.res, fl.err = res, rerr
	fl.finished = true
	delete(s.flights, fl.key)
	if rerr == nil && res != nil {
		s.cache.put(fl.key, res)
	}
	s.mu.Unlock()
	close(fl.done)
	if fl.cancel != nil {
		fl.cancel() // release the deadline timer
	}
}

func (s *Server) worker() {
	defer s.workers.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			// Fail any jobs still queued so their waiters and the
			// inflight count resolve before this worker exits.
			for {
				select {
				case j := <-s.queue:
					s.c.canceled.Add(1)
					s.finish(j.fl, nil, classify(context.Canceled, "exec-failed"))
					s.inflight.Done()
				default:
					return
				}
			}
		case j := <-s.queue:
			j.fl.tm.Admission = time.Since(j.enqueued)
			if j.fl.tr != nil {
				j.fl.tr.Complete(0, "phase:admission", "serve", j.enqueued, j.fl.tm.Admission, nil)
			}
			s.tel.executionStarted()
			res, rerr := s.execute(j)
			s.tel.executionEnded()
			s.tel.phase("admission", j.fl.tm.Admission)
			s.tel.phase("compile", j.fl.tm.Compile)
			s.tel.phase("simulate", j.fl.tm.Simulate)
			switch {
			case rerr == nil:
			case rerr.Code == "deadline":
				s.c.deadline.Add(1)
			case rerr.Code == "canceled":
				s.c.canceled.Add(1)
			case rerr.Code == "panic":
				s.c.panics.Add(1)
			default:
				s.c.failed.Add(1)
			}
			if res != nil {
				// Stamp the execution's timings onto the cached response so
				// later cache hits can attribute the compute that produced
				// their result.
				res.execTM = j.fl.tm
			}
			s.finish(j.fl, res, rerr)
			s.inflight.Done()
		}
	}
}

// execute runs one job with per-request panic isolation: a panicking
// compilation (a poisoned kernel, an injected chaos fault escaping an
// uncontained pipeline) is converted into a structured 500 and the worker
// keeps serving. This is the request-level backstop behind the pass-level
// harden.Guard containment that Contain=true requests opt into.
func (s *Server) execute(j *job) (res *Response, rerr *Error) {
	defer func() {
		if p := recover(); p != nil {
			s.logf("serve: request %s panicked: %v\n%s", j.fl.key[:12], p, debug.Stack())
			res, rerr = nil, &Error{Status: 500, Code: "panic", Msg: fmt.Sprintf("compilation panicked: %v", p)}
		}
	}()
	if err := j.ctx.Err(); err != nil {
		return nil, classify(err, "exec-failed")
	}
	if s.opts.OnCompile != nil {
		s.opts.OnCompile(j.sp.key)
	}
	s.c.compiles.Add(1)
	return runSpec(j.ctx, j.sp, &j.fl.tm, j.fl.tr)
}

func (s *Server) logf(format string, a ...any) {
	if s.opts.Log != nil {
		fmt.Fprintf(s.opts.Log, format+"\n", a...)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes the structured error body; 429 and 503 carry a
// Retry-After hint so well-behaved clients back off instead of hammering.
func writeError(w http.ResponseWriter, e *Error, retryAfter time.Duration) {
	if retryAfter > 0 && (e.Status == 429 || e.Status == 503) {
		secs := int(retryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, e.Status, e)
}
