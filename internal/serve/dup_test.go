package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDuplicateSubmissionsCompileOnce is the singleflight acceptance
// benchmark: 120 identical concurrent requests must trigger exactly one
// pool execution — the leader compiles, every other request either waits
// on the in-flight result (coalesced) or reads the cache — and every
// request must succeed. The OnCompile hook counts actual executions, so
// the assertion cannot be fooled by fast compiles.
func TestDuplicateSubmissionsCompileOnce(t *testing.T) {
	const clients = 120
	var compiles atomic.Int64
	s, ts := newTestServer(t, Options{
		Workers:   4,
		OnCompile: func(string) { compiles.Add(1) },
	})

	// Enough iterations that the compile+simulate outlives the request
	// stampede: every follower must find the flight in progress or done,
	// never a cold cache with a free queue slot. The explicit deadline
	// keeps the slow -race build (~10x) clear of the 30s default.
	req := testRequest(2_000_000)
	req.DeadlineMs = 110_000
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	lat := make([]float64, clients)
	errs := make([]error, clients)
	coalesced := make([]bool, clients)
	cached := make([]bool, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			resp, err := http.Post(ts.URL+"/compile", "application/json", bytes.NewReader(body))
			lat[i] = float64(time.Since(start).Microseconds()) / 1e3
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != 200 {
				errs[i] = &Error{Status: resp.StatusCode, Msg: string(data)}
				return
			}
			var r Response
			if err := json.Unmarshal(data, &r); err != nil {
				errs[i] = err
				return
			}
			coalesced[i], cached[i] = r.Coalesced, r.Cached
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	if got := compiles.Load(); got != 1 {
		t.Fatalf("%d identical requests caused %d compiles, want exactly 1", clients, got)
	}
	nCoalesced, nCached := 0, 0
	for i := range coalesced {
		if coalesced[i] {
			nCoalesced++
		}
		if cached[i] {
			nCached++
		}
	}
	if nCoalesced+nCached != clients-1 {
		t.Fatalf("coalesced %d + cached %d != %d followers", nCoalesced, nCached, clients-1)
	}
	if hits := s.c.cacheHits.Load() + s.c.coalesced.Load(); hits != int64(clients-1) {
		t.Fatalf("server counted %d hits, want %d", hits, clients-1)
	}
	sort.Float64s(lat)
	t.Logf("dup benchmark: %d clients, 1 compile, %d coalesced, %d cached, p50 %.1fms p99 %.1fms",
		clients, nCoalesced, nCached, lat[len(lat)/2], lat[len(lat)*99/100])
}

// TestAbandonedFlightCancels pins the refcounted-waiter contract: when
// every client of an in-flight compile disconnects, the compute context is
// canceled (the worker frees up promptly) — and because errors are never
// cached, a later identical request recompiles successfully.
func TestAbandonedFlightCancels(t *testing.T) {
	var compiles atomic.Int64
	s, ts := newTestServer(t, Options{
		Workers:   1,
		OnCompile: func(string) { compiles.Add(1) },
	})

	slow := testRequest(300_000_000)
	slow.DeadlineMs = 60_000
	body, _ := json.Marshal(slow)

	client := &http.Client{Timeout: 300 * time.Millisecond}
	_, err := client.Post(ts.URL+"/compile", "application/json", bytes.NewReader(body))
	if err == nil {
		t.Fatal("expected the client timeout to abandon the request")
	}

	// The abandoned compute must release the only worker quickly; a fast
	// request right after must not wait for the slow kernel to finish.
	fast := testRequest(10)
	done := make(chan int, 1)
	go func() {
		status, _ := post(t, ts.URL, fast)
		done <- status
	}()
	select {
	case status := <-done:
		if status != 200 {
			t.Fatalf("request after abandonment: status %d", status)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker still occupied by an abandoned compile")
	}
	if got := s.c.canceled.Load(); got != 1 {
		t.Fatalf("canceled counter = %d, want 1 (the abandoned flight)", got)
	}
	if got := compiles.Load(); got != 2 {
		t.Fatalf("compiles = %d, want 2 (abandoned + fast)", got)
	}
}
