package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe write sink for access-log assertions.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRequestIDsEverywhere pins the join-key contract: every success body,
// every structured error body, and every access-log line carries a request
// ID, all distinct, all joinable.
func TestRequestIDsEverywhere(t *testing.T) {
	var access syncBuffer
	_, ts := newTestServer(t, Options{Workers: 2, AccessLog: &access})

	// Success response.
	status, data := post(t, ts.URL, testRequest(10))
	if status != 200 {
		t.Fatalf("request: status %d: %s", status, data)
	}
	var ok Response
	if err := json.Unmarshal(data, &ok); err != nil {
		t.Fatal(err)
	}
	if ok.RequestID == "" {
		t.Fatal("success body missing request_id")
	}
	if ok.Phases == nil {
		t.Fatal("success body missing phases")
	}
	if ok.Phases.CompileMs <= 0 || ok.Phases.SimulateMs <= 0 {
		t.Errorf("execution phases not attributed: %+v", ok.Phases)
	}
	if ok.Phases.TotalMs <= 0 {
		t.Errorf("total_ms not set: %+v", ok.Phases)
	}

	// Cached duplicate still attributes the original compute.
	_, data = post(t, ts.URL, testRequest(10))
	var hit Response
	if err := json.Unmarshal(data, &hit); err != nil {
		t.Fatal(err)
	}
	if !hit.Cached {
		t.Fatalf("duplicate not cached: %+v", hit)
	}
	if hit.RequestID == "" || hit.RequestID == ok.RequestID {
		t.Errorf("cached response request_id %q should be fresh (first was %q)", hit.RequestID, ok.RequestID)
	}
	if hit.Phases == nil || hit.Phases.CompileMs != ok.Phases.CompileMs || hit.Phases.SimulateMs != ok.Phases.SimulateMs {
		t.Errorf("cache hit lost the original compute attribution: %+v vs %+v", hit.Phases, ok.Phases)
	}

	// Structured error body.
	resp, err := http.Post(ts.URL+"/compile", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var e Error
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	if e.Code != "malformed" || e.RequestID == "" {
		t.Fatalf("error body %s missing code/request_id", data)
	}

	// Access log: one line per request, joinable by request_id.
	lines := strings.Split(strings.TrimSpace(access.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("access log has %d lines, want 3:\n%s", len(lines), access.String())
	}
	seen := map[string]int{}
	for _, ln := range lines {
		var rec struct {
			RequestID string  `json:"request_id"`
			Status    int     `json:"status"`
			TotalMs   float64 `json:"total_ms"`
			Phases    *Phases `json:"phases"`
		}
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("unparseable access-log line %q: %v", ln, err)
		}
		if rec.RequestID == "" || rec.Phases == nil || rec.TotalMs <= 0 {
			t.Errorf("access-log line missing fields: %s", ln)
		}
		seen[rec.RequestID] = rec.Status
	}
	if st, okk := seen[ok.RequestID]; !okk || st != 200 {
		t.Errorf("success request %s not joined to a 200 access-log line", ok.RequestID)
	}
	if st, okk := seen[e.RequestID]; !okk || st != 400 {
		t.Errorf("failed request %s not joined to a 400 access-log line", e.RequestID)
	}
}

// TestMetricsScrape pins the /metrics contract under traffic: required
// families present, counters and histogram counts monotone across
// scrapes, and gauges parse.
func TestMetricsScrape(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	scrape := func() string {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("/metrics status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
			t.Fatalf("/metrics content-type %q", ct)
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}

	sample := func(scrape, name string) (int64, bool) {
		for _, ln := range strings.Split(scrape, "\n") {
			if strings.HasPrefix(ln, name+" ") {
				var v int64
				if _, err := fmt.Sscanf(ln[len(name)+1:], "%d", &v); err == nil {
					return v, true
				}
			}
		}
		return 0, false
	}

	post(t, ts.URL, testRequest(10))
	s1 := scrape()
	post(t, ts.URL, testRequest(10)) // cache hit
	post(t, ts.URL, testRequest(11)) // fresh compile
	s2 := scrape()

	for _, name := range []string{
		"serve_requests_total", "serve_compiles_total", "serve_cache_hits_total",
		"serve_queue_depth", "serve_workers",
		`serve_request_seconds_count`,
		`serve_phase_seconds_count{phase="compile"}`,
		`serve_phase_seconds_count{phase="encode"}`,
	} {
		v1, ok1 := sample(s1, name)
		v2, ok2 := sample(s2, name)
		if !ok1 || !ok2 {
			t.Errorf("metric %q missing from a scrape", name)
			continue
		}
		if v2 < v1 && !strings.Contains(name, "depth") {
			t.Errorf("metric %q went backwards: %d then %d", name, v1, v2)
		}
	}
	if v, _ := sample(s2, "serve_requests_total"); v != 3 {
		t.Errorf("serve_requests_total = %d after 3 requests", v)
	}
	if v, _ := sample(s2, "serve_cache_hits_total"); v != 1 {
		t.Errorf("serve_cache_hits_total = %d, want 1", v)
	}
	if v, _ := sample(s2, `serve_phase_seconds_count{phase="simulate"}`); v != 2 {
		t.Errorf("simulate phase count = %d, want 2 (pool executions only)", v)
	}
}

// TestMetricsDuringDrain pins the drain observability contract: /metrics
// keeps serving while /compile is refused, and the in-flight gauges read
// zero once the drain completes.
func TestMetricsDuringDrain(t *testing.T) {
	s := New(Options{Workers: 2})
	ts := newHTTPServer(t, s)
	post(t, ts.URL, testRequest(10))

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s.Drain(ctx)

	status, _ := post(t, ts.URL, testRequest(10))
	if status != 503 {
		t.Fatalf("post-drain compile: status %d, want 503", status)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("post-drain /metrics: status %d, want 200", resp.StatusCode)
	}
	scrape := string(data)
	if !strings.Contains(scrape, "serve_draining 1") {
		t.Error("post-drain scrape should read serve_draining 1")
	}
	if !strings.Contains(scrape, "serve_queue_depth 0") {
		t.Error("post-drain queue depth should be 0")
	}
	if s.tel.inflightExecutions.Value() != 0 {
		t.Errorf("inflight executions gauge = %d after drain, want 0", s.tel.inflightExecutions.Value())
	}
	// The post-drain 503 above has finished by the time its response was
	// read, so the request gauge is back to zero too.
	if s.tel.inflightRequests.Value() != 0 {
		t.Errorf("inflight requests gauge = %d after drain, want 0", s.tel.inflightRequests.Value())
	}
}

// TestTraceEndpoints pins request-scoped tracing: ?trace=1 returns the
// trace in the body, the stored copy is served by GET /trace (by ID and
// latest), and untraced servers 404 with a structured error.
func TestTraceEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	// No traces stored yet.
	resp, err := http.Get(ts.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("empty /trace: status %d, want 404", resp.StatusCode)
	}

	body, _ := json.Marshal(testRequest(10))
	resp, err = http.Post(ts.URL+"/compile?trace=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var r Response
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatal(err)
	}
	if r.TraceJSON == "" {
		t.Fatal("?trace=1 response missing trace_json")
	}
	var events struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(r.TraceJSON), &events); err != nil {
		t.Fatalf("trace_json is not a trace: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range events.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"phase:frontend", "phase:resolve", "phase:admission"} {
		if !names[want] {
			t.Errorf("inline trace missing span %q (has %v)", want, names)
		}
	}

	// The stored copy includes the terminal request span and the encode
	// phase the inline copy cannot contain.
	resp, err = http.Get(ts.URL + "/trace?id=" + r.RequestID)
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/trace?id=: status %d", resp.StatusCode)
	}
	stored := string(data)
	for _, want := range []string{`"request"`, "phase:encode", r.RequestID} {
		if !strings.Contains(stored, want) {
			t.Errorf("stored trace missing %q", want)
		}
	}

	// Latest-trace form finds the same one.
	resp, err = http.Get(ts.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != r.RequestID {
		t.Errorf("latest trace id %q, want %q", got, r.RequestID)
	}
}

// TestTraceSampling pins -trace-sample=N semantics: every N-th request is
// traced, starting with the first.
func TestTraceSampling(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, TraceSample: 2})
	for i := 0; i < 4; i++ {
		status, data := post(t, ts.URL, testRequest(int64(20+i)))
		if status != 200 {
			t.Fatalf("request %d: status %d: %s", i, status, data)
		}
	}
	s.traceMu.Lock()
	n := len(s.traces)
	s.traceMu.Unlock()
	if n != 2 {
		t.Fatalf("stored %d traces after 4 requests at sample rate 2, want 2", n)
	}
}

// TestDisabledTelemetry pins Options.DisableTelemetry: /metrics 404s,
// /stats omits quantiles, requests still work and still carry request
// IDs (IDs are a functional join key, not telemetry), and the recording
// path allocates nothing.
func TestDisabledTelemetry(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, DisableTelemetry: true})
	status, data := post(t, ts.URL, testRequest(10))
	if status != 200 {
		t.Fatalf("request with telemetry disabled: status %d: %s", status, data)
	}
	var r Response
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatal(err)
	}
	if r.RequestID == "" || r.Phases == nil {
		t.Error("request IDs and phase attribution are functional, not telemetry — must survive DisableTelemetry")
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("disabled /metrics: status %d, want 404", resp.StatusCode)
	}

	// The disabled recording layer is allocation-free.
	var tel *serveTelemetry
	if n := testing.AllocsPerRun(1000, func() {
		tel.requestStarted()
		tel.phase("compile", time.Millisecond)
		tel.requestDone(time.Millisecond)
		tel.executionStarted()
		tel.executionEnded()
		tel.requestEnded()
	}); n != 0 {
		t.Errorf("disabled telemetry allocates %v per request, want 0", n)
	}
	_ = s
}

// TestStatsQuantiles pins the /stats latency block: per-phase and
// end-to-end quantile summaries appear once requests have flowed.
func TestStatsQuantiles(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	post(t, ts.URL, testRequest(10))
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Phases map[string]struct {
			Count int64   `json:"count"`
			P99Ms float64 `json:"p99_ms"`
		} `json:"phases"`
		Request struct {
			Count int64   `json:"count"`
			P99Ms float64 `json:"p99_ms"`
		} `json:"request"`
		Gauges map[string]int64 `json:"gauges"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Request.Count != 1 || stats.Request.P99Ms <= 0 {
		t.Errorf("request block %+v", stats.Request)
	}
	for _, name := range phaseNames {
		if _, ok := stats.Phases[name]; !ok {
			t.Errorf("/stats phases missing %q", name)
		}
	}
	if stats.Phases["compile"].Count != 1 || stats.Phases["compile"].P99Ms <= 0 {
		t.Errorf("compile phase block %+v", stats.Phases["compile"])
	}
	if _, ok := stats.Gauges["serve_inflight_requests"]; !ok {
		t.Error("/stats missing gauges block")
	}
}

// BenchmarkTelemetryRecord measures the per-request metrics-recording
// cost with telemetry enabled; its Disabled twin pins the nil-receiver
// fast path the DisableTelemetry option buys (0 allocs in both).
func BenchmarkTelemetryRecord(b *testing.B) {
	s := New(Options{Workers: 1})
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	benchRecord(b, s.tel)
}

func BenchmarkTelemetryRecordDisabled(b *testing.B) {
	benchRecord(b, nil)
}

func benchRecord(b *testing.B, tel *serveTelemetry) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tel.requestStarted()
		tel.phase("frontend", time.Duration(i)+1)
		tel.phase("resolve", time.Duration(i)+1)
		tel.phase("compile", time.Duration(i)+1)
		tel.phase("simulate", time.Duration(i)+1)
		tel.phase("encode", time.Duration(i)+1)
		tel.requestDone(time.Duration(i) + 1)
		tel.requestEnded()
	}
}

// newHTTPServer is newTestServer without the cleanup drain, for tests
// that drain explicitly mid-test.
func newHTTPServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}
