package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"uu/internal/bench"
	"uu/internal/codegen"
	"uu/internal/core"
	"uu/internal/gpusim"
	"uu/internal/interp"
	"uu/internal/ir"
	"uu/internal/irparse"
	"uu/internal/lang"
	"uu/internal/pipeline"
	"uu/internal/profile"
	"uu/internal/remark"
	"uu/internal/transform"
)

// Request is the POST /compile body. Exactly one of App, Source, IR selects
// the kernel: a suite benchmark by name (which brings its own workload),
// MiniCU source, or textual IR. Source/IR kernels run on a zero-initialized
// memory with the given launch geometry and integer arguments.
type Request struct {
	App    string `json:"app,omitempty"`
	Source string `json:"source,omitempty"`
	IR     string `json:"ir,omitempty"`

	// Config is a pipeline configuration name (pipeline.Configs); default
	// baseline. Loop and Factor parameterize the per-loop configurations.
	Config string `json:"config,omitempty"`
	Loop   int    `json:"loop,omitempty"`
	Factor int    `json:"factor,omitempty"`

	// Heuristic parameterizes the uu-heuristic configuration (rejected with
	// any other config). This is how a PGO driver feeds measured per-loop
	// overrides into a daemon compile; the resolved parameter set is part of
	// the cache fingerprint, so requests differing only in overrides never
	// share a cache entry.
	Heuristic *HeuristicSpec `json:"heuristic,omitempty"`

	// Device is a gpusim device spec (registry name with optional
	// overrides, e.g. "Vortex:warpsize=8"); default V100.
	Device string `json:"device,omitempty"`

	// Launch geometry and workload for Source/IR kernels (ignored with App,
	// which carries its own). Args become i64 kernel arguments.
	Grid     int     `json:"grid,omitempty"`
	Block    int     `json:"block,omitempty"`
	MemBytes int64   `json:"mem_bytes,omitempty"`
	Args     []int64 `json:"args,omitempty"`

	// DeadlineMs bounds this request's compile+simulate work; 0 uses the
	// server default. Expiry cancels the work at the next pass or
	// warp-block boundary and returns 504.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`

	// Contain runs every pass under the crash-containment guard
	// (pipeline.Options.Contain); Chaos injects a fault pass ("panic",
	// "corrupt", "miscompile" — transform.ChaosPass) for robustness drills.
	Contain bool   `json:"contain,omitempty"`
	Chaos   string `json:"chaos,omitempty"`

	// Remarks selects optimization-remark kinds to return as YAML
	// (remark.ParseKinds, e.g. "all" or "passed,missed"); Profile returns
	// the per-PC hotspot profile in folded (flamegraph) form.
	Remarks string `json:"remarks,omitempty"`
	Profile bool   `json:"profile,omitempty"`

	// SimWorkers is the simulator's warp-scheduling worker count (metrics
	// are identical for any value, so it is not part of the cache key).
	SimWorkers int `json:"sim_workers,omitempty"`
}

// HeuristicSpec is the wire form of core.HeuristicParams: the static size
// budget and factor ceiling, the divergence-taint and selective-unmerge mode
// switches, and the per-loop override set in the textual syntax
// ("L10:deny,L12:force+cap=2" — core.ParseOverrides).
type HeuristicSpec struct {
	C             int    `json:"c,omitempty"`
	UMax          int    `json:"u_max,omitempty"`
	SkipDivergent bool   `json:"skip_divergent,omitempty"`
	Selective     bool   `json:"selective,omitempty"`
	Overrides     string `json:"overrides,omitempty"`
}

// Response is the POST /compile success body.
type Response struct {
	Key       string `json:"key"`
	RequestID string `json:"request_id,omitempty"`
	Cached    bool   `json:"cached"`
	Coalesced bool   `json:"coalesced,omitempty"`

	App    string `json:"app,omitempty"`
	Config string `json:"config"`
	Device string `json:"device"`

	KernelMs          float64 `json:"kernel_ms"`
	Cycles            int64   `json:"cycles"`
	IPC               float64 `json:"ipc"`
	WarpExecEff       float64 `json:"warp_exec_efficiency"`
	StallInstFetchPct float64 `json:"stall_inst_fetch_pct"`
	GldTransactions   int64   `json:"gld_transactions"`

	CompileMs         float64  `json:"compile_ms"`
	CodeBytes         int64    `json:"code_bytes"`
	LoopTransformed   bool     `json:"loop_transformed"`
	ContainedFailures []string `json:"contained_failures,omitempty"`

	RemarksYAML   string `json:"remarks_yaml,omitempty"`
	ProfileFolded string `json:"profile_folded,omitempty"`

	// Phases is the server-attributed per-phase timing breakdown; TraceJSON
	// carries the request's own trace when ?trace=1 was set. Both are
	// stamped per response at write time (never cached).
	Phases    *Phases `json:"phases,omitempty"`
	TraceJSON string  `json:"trace_json,omitempty"`

	// execTM is the pool execution's timings, carried on the cached
	// response so later cache hits attribute the compute that produced
	// their result. Unexported: server-internal, never serialized.
	execTM phaseTimings
}

// Phases is the per-phase wall-clock attribution a response and each
// access-log line carry, in milliseconds. Frontend and resolve are this
// request's own; admission, compile, and simulate belong to the pool
// execution that produced the result (zero for a malformed request that
// never reached the pool). EncodeMs is only known after the body is
// written, so it appears in access-log lines and /metrics but is zero in
// response bodies. TotalMs is the server-side wall clock from request
// arrival to (for responses) just before encoding, or (in access logs)
// the full request.
type Phases struct {
	FrontendMs  float64 `json:"frontend_ms"`
	ResolveMs   float64 `json:"resolve_ms"`
	AdmissionMs float64 `json:"admission_ms"`
	CompileMs   float64 `json:"compile_ms"`
	SimulateMs  float64 `json:"simulate_ms"`
	EncodeMs    float64 `json:"encode_ms,omitempty"`
	TotalMs     float64 `json:"total_ms"`
}

// Error is the structured error body every non-200 response carries:
// machine-readable code, human-readable message, and the request ID that
// joins the failure to its access-log line and trace. Status is the HTTP
// status it was delivered with (set client-side; not serialized).
type Error struct {
	Status    int    `json:"-"`
	Code      string `json:"code"`
	Msg       string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

func (e *Error) Error() string { return fmt.Sprintf("%s (%d): %s", e.Code, e.Status, e.Msg) }

func errBadRequest(format string, a ...any) *Error {
	return &Error{Status: 400, Code: "bad-request", Msg: fmt.Sprintf(format, a...)}
}

// Resource ceilings. The daemon simulates untrusted kernels; a request must
// not be able to demand unbounded memory or thread counts no matter what
// the deadline allows.
const (
	maxBlockDim = 1024
	maxGridDim  = 1 << 14
	maxThreads  = 1 << 20
	maxMemBytes = int64(64) << 20
	maxFactor   = 64
)

// spec is a validated, compiled-frontend request: everything a pool worker
// needs to run it, plus its content-addressed key.
type spec struct {
	key     string
	app     string
	f       *ir.Function
	opts    pipeline.Options
	dev     gpusim.DeviceConfig
	devName string
	launch  gpusim.Launch
	args    []interp.Value
	newMem  func() *interp.Memory

	simWorkers  int
	remarkKinds map[remark.Kind]bool
	wantRemarks bool
	wantProfile bool
}

// buildSpec validates a request and compiles its frontend (benchmark
// lookup, MiniCU compilation, or IR parsing), returning a pool-ready spec.
// The frontend runs in the handler goroutine — it is cheap and its failures
// are the client's fault, so they return 400 without occupying a worker.
// A recover wall turns frontend panics on adversarial input into structured
// 400s instead of a lost connection.
func buildSpec(req *Request) (sp *spec, rerr *Error) {
	defer func() {
		if p := recover(); p != nil {
			sp, rerr = nil, errBadRequest("kernel frontend panicked: %v", p)
		}
	}()
	sources := 0
	for _, s := range []string{req.App, req.Source, req.IR} {
		if s != "" {
			sources++
		}
	}
	if sources != 1 {
		return nil, errBadRequest("exactly one of app, source, ir must be set (got %d)", sources)
	}

	cfg := pipeline.Baseline
	if req.Config != "" {
		ok := false
		for _, c := range pipeline.Configs {
			if string(c) == req.Config {
				cfg, ok = c, true
				break
			}
		}
		if !ok {
			return nil, errBadRequest("unknown config %q (want one of %v)", req.Config, pipeline.Configs)
		}
	}
	if req.Factor < 0 || req.Factor > maxFactor {
		return nil, errBadRequest("factor %d out of range [0,%d]", req.Factor, maxFactor)
	}
	if req.Loop < 0 {
		return nil, errBadRequest("loop %d must be >= 0", req.Loop)
	}
	switch req.Chaos {
	case "", string(transform.ChaosPanic), string(transform.ChaosCorrupt), string(transform.ChaosMiscompile):
	default:
		return nil, errBadRequest("unknown chaos mode %q (want panic, corrupt, or miscompile)", req.Chaos)
	}

	devSpec := req.Device
	if devSpec == "" {
		devSpec = "V100"
	}
	dev, devName, err := gpusim.ParseDevice(devSpec)
	if err != nil {
		return nil, errBadRequest("%v", err)
	}

	sp = &spec{
		app:         req.App,
		dev:         dev,
		devName:     devName,
		simWorkers:  req.SimWorkers,
		wantProfile: req.Profile,
	}
	if sp.simWorkers < 1 {
		sp.simWorkers = 1
	}
	if req.Remarks != "" {
		kinds, err := remark.ParseKinds(req.Remarks)
		if err != nil {
			return nil, errBadRequest("%v", err)
		}
		sp.remarkKinds = kinds
		sp.wantRemarks = true
	}

	var memSize int64
	switch {
	case req.App != "":
		b := bench.ByName(req.App)
		if b == nil {
			return nil, errBadRequest("unknown benchmark %q", req.App)
		}
		f, err := b.CompileKernel()
		if err != nil {
			return nil, errBadRequest("%v", err)
		}
		w := b.NewWorkload()
		sp.f = f
		sp.launch = w.Launch
		sp.args = w.Args
		sp.newMem = w.NewMemory
		memSize = w.MemSize
	default:
		var f *ir.Function
		if req.Source != "" {
			f, err = lang.CompileKernel(req.Source)
		} else {
			f, err = irparse.ParseFunc(req.IR)
			if err == nil {
				err = ir.Verify(f)
			}
		}
		if err != nil {
			return nil, errBadRequest("%v", err)
		}
		grid, block := req.Grid, req.Block
		if grid == 0 {
			grid = 1
		}
		if block == 0 {
			block = 32
		}
		if block < 1 || block > maxBlockDim || grid < 1 || grid > maxGridDim || grid*block > maxThreads {
			return nil, errBadRequest("launch %dx%d out of range (block <= %d, grid <= %d, threads <= %d)",
				grid, block, maxBlockDim, maxGridDim, maxThreads)
		}
		memSize = req.MemBytes
		if memSize == 0 {
			memSize = 1 << 16
		}
		if memSize < 0 || memSize > maxMemBytes {
			return nil, errBadRequest("mem_bytes %d out of range [0,%d]", memSize, maxMemBytes)
		}
		if len(f.Params) != len(req.Args) {
			return nil, errBadRequest("kernel %s takes %d arguments, got %d", f.Name, len(f.Params), len(req.Args))
		}
		sp.f = f
		sp.launch = gpusim.Launch{GridDim: grid, BlockDim: block}
		sp.args = make([]interp.Value, len(req.Args))
		for i, a := range req.Args {
			sp.args[i] = interp.IntVal(a)
		}
		size := memSize
		sp.newMem = func() *interp.Memory { return interp.NewMemory(size) }
	}

	sp.opts = pipeline.Options{
		Config:  cfg,
		LoopID:  req.Loop,
		Factor:  req.Factor,
		Contain: req.Contain,
	}
	if req.Heuristic != nil {
		if cfg != pipeline.UUHeuristic {
			return nil, errBadRequest("heuristic parameters require config %q (got %q)", pipeline.UUHeuristic, cfg)
		}
		hs := req.Heuristic
		if hs.C < 0 {
			return nil, errBadRequest("heuristic c %d must be >= 0", hs.C)
		}
		if hs.UMax < 0 || hs.UMax > maxFactor {
			return nil, errBadRequest("heuristic u_max %d out of range [0,%d]", hs.UMax, maxFactor)
		}
		ov, err := core.ParseOverrides(hs.Overrides)
		if err != nil {
			return nil, errBadRequest("%v", err)
		}
		for line, o := range ov {
			if o.FactorCap > maxFactor {
				return nil, errBadRequest("override L%d cap %d exceeds %d", line, o.FactorCap, maxFactor)
			}
		}
		sp.opts.Heuristic = core.HeuristicParams{
			C: hs.C, UMax: hs.UMax,
			SkipDivergent: hs.SkipDivergent,
			Selective:     hs.Selective,
			Overrides:     ov,
		}
	}

	canon, err := CanonicalIR(sp.f)
	if err != nil {
		return nil, errBadRequest("%v", err)
	}
	sp.key = Fingerprint(canon, sp.opts, sp.dev, sp.launch, memSize, req.Args, req.Chaos, req.Remarks, req.Profile)
	if req.Chaos != "" {
		sp.opts.Inject = append(sp.opts.Inject, transform.ChaosPass(transform.ChaosMode(req.Chaos)))
	}
	return sp, nil
}

// runSpec executes a spec: pipeline, codegen, simulation, artifact
// rendering. Cancellation (deadline expiry, all waiters gone, drain) stops
// at the next pass or warp-block boundary and classifies through ctxError.
// tm receives the compile and simulate wall clocks; tr, when non-nil, is
// the leader's request trace — the pipeline's per-pass spans and the
// simulator's events land on it.
func runSpec(ctx context.Context, sp *spec, tm *phaseTimings, tr *remark.Trace) (*Response, *Error) {
	opts := sp.opts
	opts.Trace = tr
	var col *remark.Collector
	if sp.wantRemarks {
		col = remark.NewCollector()
		opts.Remarks = col
	}
	f := ir.Clone(sp.f)
	tCompile := time.Now()
	stats, err := pipeline.OptimizeCtx(ctx, f, opts)
	if err != nil {
		tm.Compile = time.Since(tCompile)
		return nil, classify(err, "compile-failed")
	}
	prog, lowerErr := codegen.Lower(f)
	tm.Compile = time.Since(tCompile)
	if lowerErr != nil {
		return nil, &Error{Status: 422, Code: "compile-failed", Msg: lowerErr.Error()}
	}
	var prof *gpusim.Profile
	if sp.wantProfile {
		prof = gpusim.NewProfile(prog)
	}
	mem := sp.newMem()
	tSimulate := time.Now()
	m, err := gpusim.RunWorkersProfiledCtx(ctx, prog, sp.args, mem, sp.launch, sp.dev, sp.simWorkers, tr, 0, prof)
	tm.Simulate = time.Since(tSimulate)
	if err != nil {
		return nil, classify(err, "exec-failed")
	}

	resp := &Response{
		Key:               sp.key,
		App:               sp.app,
		Config:            string(sp.opts.Config),
		Device:            sp.devName,
		KernelMs:          m.KernelMillis(sp.dev),
		Cycles:            m.Cycles,
		IPC:               m.IPC(),
		WarpExecEff:       m.WarpExecutionEfficiency(sp.dev),
		StallInstFetchPct: m.StallInstFetchPct(),
		GldTransactions:   m.GldTransactions,
		CompileMs:         float64(stats.CompileTime.Microseconds()) / 1e3,
		CodeBytes:         prog.CodeBytes(),
		LoopTransformed:   stats.LoopTransformed,
	}
	for _, pf := range stats.Failures {
		resp.ContainedFailures = append(resp.ContainedFailures, pf.String())
	}
	if col != nil {
		var sb strings.Builder
		if err := remark.WriteYAML(&sb, col.Remarks(), sp.remarkKinds); err == nil {
			resp.RemarksYAML = sb.String()
		}
	}
	if prof != nil {
		rep := profile.Build(prog, prof)
		var sb strings.Builder
		if err := profile.WriteFolded(&sb, rep); err == nil {
			resp.ProfileFolded = sb.String()
		}
	}
	return resp, nil
}

// classify maps an execution error to a structured response error:
// deadline expiry → 504, cancellation (client gone, drain) → 503, anything
// else → 422 under the stage's code.
func classify(err error, code string) *Error {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return &Error{Status: 504, Code: "deadline", Msg: err.Error()}
	case errors.Is(err, context.Canceled):
		return &Error{Status: 503, Code: "canceled", Msg: err.Error()}
	}
	return &Error{Status: 422, Code: code, Msg: err.Error()}
}
