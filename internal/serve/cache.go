package serve

import "container/list"

// lruCache is the content-addressed result cache: fingerprint → completed
// response, bounded by entry count with least-recently-used eviction. Only
// successful responses are cached — errors (deadlines, panics, sheds) must
// re-execute, both because they are cheap to produce and because caching a
// transient failure would poison every future duplicate. The cache is not
// safe for concurrent use; the Server serializes access under its mutex.
type lruCache struct {
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val *Response
}

func newLRU(max int) *lruCache {
	return &lruCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *lruCache) get(key string) (*Response, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

func (c *lruCache) put(key string, v *Response) {
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: v})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*lruEntry).key)
	}
}

func (c *lruCache) len() int { return c.ll.Len() }
