package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testKernel is a small MiniCU kernel whose runtime scales with the iters
// argument, so tests can dial work up (deadline drills) or down (fast
// smoke requests).
const testKernel = `
kernel work(double* restrict x, double* restrict y, long n, long iters) {
  long gid = (long)global_id();
  if (gid >= n) { return; }
  double acc = x[gid] + 1.0;
  for (long i = 0; i < iters; i++) {
    acc = acc * 1.000001 + 0.5;
    if (acc > 1e30) { acc = 1.0; }
  }
  y[gid] = acc;
}
`

// testRequest returns a fast valid request for testKernel. n=64 threads in
// two warps; x at 0, y at 64*8.
func testRequest(iters int64) *Request {
	return &Request{
		Source:   testKernel,
		Config:   "uu",
		Factor:   2,
		Grid:     2,
		Block:    32,
		MemBytes: 1 << 12,
		Args:     []int64{0, 512, 64, iters},
	}
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, ts
}

func post(t *testing.T, url string, req *Request) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func TestCompileAndCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	status, data := post(t, ts.URL, testRequest(10))
	if status != 200 {
		t.Fatalf("first request: status %d: %s", status, data)
	}
	var r1 Response
	if err := json.Unmarshal(data, &r1); err != nil {
		t.Fatal(err)
	}
	if r1.Cached || r1.Cycles == 0 || r1.KernelMs <= 0 || r1.Key == "" {
		t.Fatalf("implausible first response: %+v", r1)
	}

	status, data = post(t, ts.URL, testRequest(10))
	if status != 200 {
		t.Fatalf("second request: status %d: %s", status, data)
	}
	var r2 Response
	if err := json.Unmarshal(data, &r2); err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatalf("duplicate request was not served from cache: %+v", r2)
	}
	if r2.Cycles != r1.Cycles || r2.Key != r1.Key {
		t.Fatalf("cached response diverged: %+v vs %+v", r1, r2)
	}
}

func TestStructuredErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, MaxBodyBytes: 4096})
	cases := []struct {
		name       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"malformed-json", "{not json", 400, "malformed"},
		{"no-kernel", "{}", 400, "bad-request"},
		{"two-kernels", `{"app":"xsbench","source":"kernel k() {}"}`, 400, "bad-request"},
		{"unknown-app", `{"app":"nope"}`, 400, "bad-request"},
		{"unknown-config", `{"app":"xsbench","config":"turbo"}`, 400, "bad-request"},
		{"bad-chaos", `{"app":"xsbench","chaos":"meteor"}`, 400, "bad-request"},
		{"bad-device", `{"app":"xsbench","device":"H100"}`, 400, "bad-request"},
		{"bad-source", `{"source":"kernel k( {"}`, 400, "bad-request"},
		{"bad-args", `{"source":"kernel k(long n) { long x = n; }","args":[]}`, 400, "bad-request"},
		{"oversized", `{"source":"` + strings.Repeat("x", 8192) + `"}`, 413, "oversized"},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/compile", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.wantStatus, data)
			continue
		}
		var e Error
		if err := json.Unmarshal(data, &e); err != nil || e.Code != tc.wantCode {
			t.Errorf("%s: body %q, want structured code %q", tc.name, data, tc.wantCode)
		}
	}
}

// TestPanicIsolation injects the chaos pass's mid-pass panic into an
// uncontained pipeline: the request must fail with a structured 500 and
// the pool must keep serving afterwards.
func TestPanicIsolation(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	req := testRequest(10)
	req.Chaos = "panic"
	status, data := post(t, ts.URL, req)
	if status != 500 {
		t.Fatalf("poisoned request: status %d (%s), want 500", status, data)
	}
	var e Error
	if err := json.Unmarshal(data, &e); err != nil || e.Code != "panic" {
		t.Fatalf("poisoned request body %q, want code \"panic\"", data)
	}
	if s.c.panics.Load() != 1 {
		t.Fatalf("panic counter = %d, want 1", s.c.panics.Load())
	}

	// The same worker must still serve clean work.
	status, data = post(t, ts.URL, testRequest(10))
	if status != 200 {
		t.Fatalf("request after panic: status %d (%s), want 200", status, data)
	}
}

// TestChaosContained turns containment on: the same injected panic is
// caught at the pass level (harden.Guard semantics via the pipeline), the
// compilation completes with the pass skipped, and the response reports
// the contained failure.
func TestChaosContained(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	req := testRequest(10)
	req.Chaos = "panic"
	req.Contain = true
	status, data := post(t, ts.URL, req)
	if status != 200 {
		t.Fatalf("contained chaos: status %d (%s), want 200", status, data)
	}
	var r Response
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatal(err)
	}
	if len(r.ContainedFailures) == 0 {
		t.Fatalf("contained chaos reported no failures: %+v", r)
	}
}

// TestDeadlineCancelsWork submits a kernel that needs far longer than its
// deadline: the request must come back 504 within a bounded wall-clock
// time (cancellation at warp-block boundaries, not after the kernel
// finishes).
func TestDeadlineCancelsWork(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	req := testRequest(200_000_000) // ~1e9 warp steps: minutes of simulation
	req.DeadlineMs = 200
	start := time.Now()
	status, data := post(t, ts.URL, req)
	elapsed := time.Since(start)
	if status != 504 {
		t.Fatalf("slow request: status %d (%s), want 504", status, data)
	}
	var e Error
	if err := json.Unmarshal(data, &e); err != nil || e.Code != "deadline" {
		t.Fatalf("slow request body %q, want code \"deadline\"", data)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("deadline took %s to take effect; cancellation is not prompt", elapsed)
	}
	if s.c.deadline.Load() != 1 {
		t.Fatalf("deadline counter = %d, want 1", s.c.deadline.Load())
	}
}

// TestLoadShedding fills the pool and queue with slow work and asserts the
// next request is shed with 429 + Retry-After instead of queueing.
func TestLoadShedding(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1, RetryAfter: 2 * time.Second})
	slow := testRequest(50_000_000)
	slow.DeadlineMs = 3000

	// Occupy the worker and the queue slot. Distinct factors keep the
	// fingerprints distinct so they do not coalesce.
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(factor int) {
			r := *slow
			r.Factor = 2 * (factor + 1)
			status, data := post(t, ts.URL, &r)
			if status != 200 && status != 504 {
				errs <- fmt.Errorf("slow request %d: status %d (%s)", factor, status, data)
				return
			}
			errs <- nil
		}(i)
	}
	time.Sleep(300 * time.Millisecond) // let both reach the queue

	shed := *slow
	shed.Factor = 8
	body, _ := json.Marshal(&shed)
	resp, err := http.Post(ts.URL+"/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 429 {
		t.Fatalf("overload request: status %d (%s), want 429", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After")
	}
	var e Error
	if err := json.Unmarshal(data, &e); err != nil || e.Code != "shed" {
		t.Fatalf("shed body %q, want code \"shed\"", data)
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestStatsEndpoint asserts /stats carries every documented counter.
func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	post(t, ts.URL, testRequest(10))
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Counters map[string]int64 `json:"counters"`
		QueueCap int              `json:"queue_cap"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	for _, name := range counterNames {
		if _, ok := stats.Counters[name]; !ok {
			t.Errorf("/stats missing counter %s", name)
		}
	}
	if len(stats.Counters) != len(counterNames) {
		t.Errorf("/stats has %d counters, counterNames lists %d — update counterNames and docs/METRICS.md", len(stats.Counters), len(counterNames))
	}
	if stats.Counters["serve_requests_total"] == 0 || stats.Counters["serve_compiles_total"] == 0 {
		t.Errorf("counters did not record the request: %+v", stats.Counters)
	}
}

// TestDrainRejectsNewWork pins the drain contract: after Drain begins, new
// compile requests and the readiness probe get structured 503s while the
// liveness probe stays 200 — killing a pod mid-drain would lose the very
// work Drain exists to finish.
func TestDrainRejectsNewWork(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, _ := post(t, ts.URL, testRequest(10))
	if status != 200 {
		t.Fatalf("pre-drain request: status %d", status)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	snap := s.Drain(ctx)
	if snap["serve_requests_total"] != 1 {
		t.Fatalf("drain snapshot lost counters: %+v", snap)
	}

	status, data := post(t, ts.URL, testRequest(10))
	if status != 503 {
		t.Fatalf("post-drain request: status %d (%s), want 503", status, data)
	}
	var e Error
	if err := json.Unmarshal(data, &e); err != nil || e.Code != "draining" {
		t.Fatalf("post-drain body %q, want code \"draining\"", data)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("post-drain readyz: status %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("post-drain healthz: status %d, want 200 (liveness, not readiness)", resp.StatusCode)
	}
}

// TestLRUCacheEviction pins the cache bound: the oldest entry falls out.
func TestLRUCacheEviction(t *testing.T) {
	c := newLRU(2)
	c.put("a", &Response{Key: "a"})
	c.put("b", &Response{Key: "b"})
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted too early")
	}
	c.put("c", &Response{Key: "c"}) // evicts b (a was just used)
	if _, ok := c.get("b"); ok {
		t.Fatal("b not evicted")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s missing", k)
		}
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}
