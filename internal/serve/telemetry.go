package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"uu/internal/remark"
	"uu/internal/telemetry"
)

// phaseNames lists the per-request phases in pipeline order. Each is a
// label value of the serve_phase_seconds histogram family and a field of
// the response's "phases" object; all are documented in docs/METRICS.md
// and docs/OBSERVABILITY.md (TestServeCounterNamesDocumented enforces
// the METRICS.md rows).
//
//   - frontend:  request decode + kernel frontend (benchmark lookup,
//     MiniCU compile, IR parse) + fingerprinting
//   - resolve:   cache lookup and singleflight resolution — for a
//     coalesced follower this includes the wait on the leader's result
//   - admission: a leader's queue wait from enqueue to worker pickup
//   - compile:   pipeline passes + codegen (pool execution only)
//   - simulate:  gpusim execution (pool execution only)
//   - encode:    response serialization and write
var phaseNames = []string{"frontend", "resolve", "admission", "compile", "simulate", "encode"}

// histogramNames lists every latency histogram family /metrics exposes,
// in render order; gaugeNames the gauge families. Like counterNames,
// both are linted against docs/METRICS.md.
var histogramNames = []string{
	"serve_request_seconds",
	"serve_phase_seconds",
}

var gaugeNames = []string{
	"serve_queue_depth",
	"serve_queue_capacity",
	"serve_workers",
	"serve_inflight_requests",
	"serve_inflight_executions",
	"serve_cache_entries",
	"serve_draining",
}

// phaseTimings accumulates one request's per-phase wall clock. Frontend
// and resolve belong to the handler; admission, compile, and simulate to
// the pool execution (they live on the flight so every waiter can report
// the compute that produced its result); encode is measured at the write
// site.
type phaseTimings struct {
	Frontend  time.Duration
	Resolve   time.Duration
	Admission time.Duration
	Compile   time.Duration
	Simulate  time.Duration
}

// serveTelemetry owns the server's metrics registry and the handles the
// hot path records into. A nil *serveTelemetry is the disabled layer:
// every method no-ops at the cost of one branch and zero allocations
// (Options.DisableTelemetry; pinned by TestDisabledTelemetryZeroAlloc).
type serveTelemetry struct {
	reg     *telemetry.Registry
	request *telemetry.Histogram
	phases  map[string]*telemetry.Histogram

	inflightRequests   *telemetry.Gauge
	inflightExecutions *telemetry.Gauge
}

// newServeTelemetry builds the registry: the pre-existing atomic event
// counters are bridged with CounterFunc, structural levels (queue depth,
// cache size, drain state) with GaugeFunc, and the latency histograms
// are owned here.
func newServeTelemetry(s *Server) *serveTelemetry {
	t := &serveTelemetry{
		reg:    telemetry.NewRegistry(),
		phases: make(map[string]*telemetry.Histogram, len(phaseNames)),
	}
	counters := []struct {
		name string
		fn   func() int64
	}{
		{"serve_requests_total", s.c.requests.Load},
		{"serve_cache_hits_total", s.c.cacheHits.Load},
		{"serve_coalesced_total", s.c.coalesced.Load},
		{"serve_compiles_total", s.c.compiles.Load},
		{"serve_shed_total", s.c.shed.Load},
		{"serve_panics_total", s.c.panics.Load},
		{"serve_deadline_expired_total", s.c.deadline.Load},
		{"serve_canceled_total", s.c.canceled.Load},
		{"serve_malformed_total", s.c.malformed.Load},
		{"serve_failed_total", s.c.failed.Load},
	}
	for _, c := range counters {
		t.reg.CounterFunc(c.name, "See docs/METRICS.md, compile-service counters.", c.fn)
	}

	t.reg.GaugeFunc("serve_queue_depth", "Jobs waiting in the admission queue.",
		func() int64 { return int64(len(s.queue)) })
	t.reg.GaugeFunc("serve_queue_capacity", "Admission queue capacity.",
		func() int64 { return int64(cap(s.queue)) })
	t.reg.GaugeFunc("serve_workers", "Compile/simulate pool size.",
		func() int64 { return int64(s.opts.Workers) })
	t.inflightRequests = t.reg.Gauge("serve_inflight_requests", "HTTP compile requests currently being handled.")
	t.inflightExecutions = t.reg.Gauge("serve_inflight_executions", "Pool executions currently running.")
	t.reg.GaugeFunc("serve_cache_entries", "Entries in the result cache.",
		func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return int64(s.cache.len())
		})
	t.reg.GaugeFunc("serve_draining", "1 once Drain has begun, else 0.",
		func() int64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})

	t.request = t.reg.DurationHistogram("serve_request_seconds",
		"End-to-end POST /compile latency, all outcomes.")
	for _, name := range phaseNames {
		t.phases[name] = t.reg.DurationHistogram("serve_phase_seconds",
			"Per-phase request latency; see docs/OBSERVABILITY.md for phase semantics.", "phase", name)
	}
	return t
}

// phase records one per-phase duration. Zero durations mean the phase
// never ran and are not recorded, so each phase histogram describes only
// the requests that entered that phase.
func (t *serveTelemetry) phase(name string, d time.Duration) {
	if t == nil || d <= 0 {
		return
	}
	t.phases[name].ObserveDuration(d)
}

// requestDone records one end-to-end request latency.
func (t *serveTelemetry) requestDone(d time.Duration) {
	if t == nil {
		return
	}
	t.request.ObserveDuration(d)
}

func (t *serveTelemetry) requestStarted() {
	if t == nil {
		return
	}
	t.inflightRequests.Inc()
}

func (t *serveTelemetry) requestEnded() {
	if t == nil {
		return
	}
	t.inflightRequests.Dec()
}

func (t *serveTelemetry) executionStarted() {
	if t == nil {
		return
	}
	t.inflightExecutions.Inc()
}

func (t *serveTelemetry) executionEnded() {
	if t == nil {
		return
	}
	t.inflightExecutions.Dec()
}

// phaseSnapshots returns a stable-ordered snapshot of every phase
// histogram for /stats and the drain flush.
func (t *serveTelemetry) phaseSnapshots() map[string]*telemetry.HistSnapshot {
	if t == nil {
		return nil
	}
	out := make(map[string]*telemetry.HistSnapshot, len(t.phases))
	for name, h := range t.phases {
		out[name] = h.Snapshot()
	}
	return out
}

// reqState is the request-scoped observability context: the request ID
// every response body, access-log line, and trace event carries, the
// handler-side phase timings, and — for sampled or ?trace=1 requests —
// the request's own wall-clock trace.
type reqState struct {
	srv   *Server
	id    string
	start time.Time
	tm    phaseTimings

	tr         *remark.Trace // non-nil only when this request is traced
	forceTrace bool          // ?trace=1: return the trace in the response body

	key       string
	app       string
	cached    bool
	coalesced bool
	exec      *phaseTimings // the pool execution's timings, when one produced this result
}

// newReqState mints the request ID and decides tracing: every
// Options.TraceSample-th request is traced, and ?trace=1 forces it.
func (s *Server) newReqState(r *http.Request) *reqState {
	seq := s.reqSeq.Add(1)
	st := &reqState{
		srv:   s,
		id:    fmt.Sprintf("r-%s-%06d", s.idEpoch, seq),
		start: time.Now(),
	}
	if r != nil {
		st.forceTrace = r.URL.Query().Get("trace") == "1"
	}
	if st.forceTrace || (s.opts.TraceSample > 0 && (seq-1)%int64(s.opts.TraceSample) == 0) {
		st.tr = remark.NewTrace()
	}
	return st
}

// span records a completed phase span on the request's trace, if any.
func (st *reqState) span(name string, start time.Time, dur time.Duration) {
	if st.tr == nil {
		return
	}
	st.tr.Complete(0, "phase:"+name, "serve", start, dur, nil)
}

// phasesMs renders the server-attributed phase timings for the response
// body: handler phases from this request, compute phases from the
// execution that produced the result (the leader's own, for a coalesced
// or cached response). Total is the server-side wall clock up to — but
// not including — response encoding, which is only observable in
// /metrics (serve_phase_seconds{phase="encode"}).
func (st *reqState) phasesMs() *Phases {
	p := &Phases{
		FrontendMs: ms(st.tm.Frontend),
		ResolveMs:  ms(st.tm.Resolve),
		TotalMs:    ms(time.Since(st.start)),
	}
	if st.exec != nil {
		p.AdmissionMs = ms(st.exec.Admission)
		p.CompileMs = ms(st.exec.Compile)
		p.SimulateMs = ms(st.exec.Simulate)
	}
	return p
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }

// respond writes the 200 body, stamped with the request ID and phase
// attribution, then finishes instrumentation.
func (st *reqState) respond(w http.ResponseWriter, resp *Response) {
	resp.RequestID = st.id
	resp.Phases = st.phasesMs()
	st.cached, st.coalesced = resp.Cached, resp.Coalesced
	if st.tr != nil && st.forceTrace {
		var buf bytes.Buffer
		if err := st.tr.WriteJSON(&buf); err == nil {
			// The returned trace necessarily misses its own encode span;
			// the stored copy (GET /trace) includes it.
			resp.TraceJSON = buf.String()
		}
	}
	enc := writeJSONTimed(w, 200, resp)
	st.finish(200, "", enc)
}

// fail writes a structured error body — every error carries the request
// ID so failures join to access-log lines and traces — then finishes
// instrumentation.
func (st *reqState) fail(w http.ResponseWriter, e *Error, retryAfter time.Duration) {
	e.RequestID = st.id
	start := time.Now()
	writeError(w, e, retryAfter)
	st.finish(e.Status, e.Code, time.Since(start))
}

// disconnected finishes a request whose client went away before a
// response could be written (status 499, the de facto convention).
func (st *reqState) disconnected() {
	st.finish(499, "client-gone", 0)
}

// finish closes out the request: histograms, the trace's terminal events
// and storage, and the structured access-log line.
func (st *reqState) finish(status int, code string, encode time.Duration) {
	s := st.srv
	total := time.Since(st.start)
	s.tel.phase("frontend", st.tm.Frontend)
	s.tel.phase("resolve", st.tm.Resolve)
	s.tel.phase("encode", encode)
	s.tel.requestDone(total)

	if st.tr != nil {
		if encode > 0 {
			st.tr.Complete(0, "phase:encode", "serve", st.start.Add(total-encode), encode, nil)
		}
		st.tr.Complete(0, "request", "serve", st.start, total, map[string]any{
			"request_id": st.id, "key": st.key, "status": status,
		})
		var buf bytes.Buffer
		if err := st.tr.WriteJSON(&buf); err == nil {
			s.storeTrace(st.id, buf.Bytes())
		}
	}
	s.accessLog(st, status, code, total, encode)
}

// accessLogLine is one structured JSON access-log record; request_id is
// the join key against error bodies, traces, and remark streams.
type accessLogLine struct {
	TS        string  `json:"ts"`
	RequestID string  `json:"request_id"`
	Status    int     `json:"status"`
	Code      string  `json:"code,omitempty"`
	Key       string  `json:"key,omitempty"`
	App       string  `json:"app,omitempty"`
	Cached    bool    `json:"cached,omitempty"`
	Coalesced bool    `json:"coalesced,omitempty"`
	Traced    bool    `json:"traced,omitempty"`
	TotalMs   float64 `json:"total_ms"`
	Phases    *Phases `json:"phases,omitempty"`
}

func (s *Server) accessLog(st *reqState, status int, code string, total, encode time.Duration) {
	if s.opts.AccessLog == nil {
		return
	}
	line := accessLogLine{
		TS:        st.start.UTC().Format(time.RFC3339Nano),
		RequestID: st.id,
		Status:    status,
		Code:      code,
		Key:       st.key,
		App:       st.app,
		Cached:    st.cached,
		Coalesced: st.coalesced,
		Traced:    st.tr != nil,
		TotalMs:   ms(total),
	}
	p := st.phasesMs()
	p.EncodeMs = ms(encode)
	p.TotalMs = ms(total)
	line.Phases = p
	b, err := json.Marshal(&line)
	if err != nil {
		return
	}
	b = append(b, '\n')
	s.accessMu.Lock()
	_, _ = s.opts.AccessLog.Write(b)
	s.accessMu.Unlock()
}

// traceRing holds the most recent request traces for GET /trace.
const traceRingSize = 8

type storedTrace struct {
	id   string
	data []byte
}

func (s *Server) storeTrace(id string, data []byte) {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	s.traces = append(s.traces, storedTrace{id: id, data: append([]byte(nil), data...)})
	if len(s.traces) > traceRingSize {
		s.traces = s.traces[len(s.traces)-traceRingSize:]
	}
}

// handleTrace serves stored request traces: the most recent by default,
// or a specific one with ?id=<request_id>. Traces exist for sampled
// (Options.TraceSample) and ?trace=1 requests only.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	s.traceMu.Lock()
	var found *storedTrace
	for i := len(s.traces) - 1; i >= 0; i-- {
		if id == "" || s.traces[i].id == id {
			found = &s.traces[i]
			break
		}
	}
	s.traceMu.Unlock()
	if found == nil {
		writeError(w, &Error{Status: 404, Code: "no-trace", Msg: "no stored trace (enable -trace-sample or use ?trace=1)"}, 0)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Request-ID", found.id)
	_, _ = w.Write(found.data)
}

// handleMetrics serves the Prometheus text exposition. Unlike /compile
// it keeps serving during drain, so operators can watch the queue and
// in-flight gauges fall to zero.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.tel == nil {
		writeError(w, &Error{Status: 404, Code: "no-telemetry", Msg: "telemetry is disabled"}, 0)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.tel.reg.WritePrometheus(w)
}

// writeJSONTimed marshals v, writes it with the given status, and
// returns the encode duration (marshal + write).
func writeJSONTimed(w http.ResponseWriter, status int, v any) time.Duration {
	start := time.Now()
	b, err := json.Marshal(v)
	if err != nil {
		w.WriteHeader(500)
		return time.Since(start)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(b)
	_, _ = w.Write([]byte{'\n'})
	return time.Since(start)
}
