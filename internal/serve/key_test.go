package serve

import (
	"fmt"
	"math/rand"
	"testing"

	"uu/internal/bench"
	"uu/internal/core"
	"uu/internal/gpusim"
	"uu/internal/harden"
	"uu/internal/ir"
	"uu/internal/irparse"
	"uu/internal/pipeline"
)

// TestCanonicalIRFixedPointSuite runs the print→parse→print property over
// the real kernel corpus: every suite benchmark's IR must canonicalize,
// parse back, and reprint byte-identically (CanonicalIR asserts the fixed
// point internally; this test pins that it holds for production kernels,
// not just generated ones).
func TestCanonicalIRFixedPointSuite(t *testing.T) {
	for _, b := range bench.Suite {
		f, err := b.CompileKernel()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		canon, err := CanonicalIR(f)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		// Idempotence: canonicalizing the canonical form is the identity.
		rt, err := irparse.ParseFunc(canon)
		if err != nil {
			t.Fatalf("%s: reparse: %v", b.Name, err)
		}
		again, err := CanonicalIR(rt)
		if err != nil {
			t.Fatalf("%s: re-canonicalize: %v", b.Name, err)
		}
		if again != canon {
			t.Fatalf("%s: CanonicalIR is not idempotent", b.Name)
		}
	}
}

// TestCanonicalIRFixedPointGenerated runs the same property over 200
// generated kernels — the adversarial half of the corpus, covering CFG
// shapes the suite never produces.
func TestCanonicalIRFixedPointGenerated(t *testing.T) {
	for seed := int64(1); seed <= 200; seed++ {
		k := harden.Generate(seed)
		canon, err := CanonicalIR(k.F)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rt, err := irparse.ParseFunc(canon)
		if err != nil {
			t.Fatalf("seed %d: reparse: %v", seed, err)
		}
		if rt.String() != canon {
			t.Fatalf("seed %d: print->parse->print not a fixed point", seed)
		}
	}
}

// TestShuffledNamesHashEqual is the cache-correctness property: renaming
// every value, block, and parameter must not change the fingerprint, so a
// duplicate submission whose frontend happened to pick different temps
// still coalesces onto the same cache entry.
func TestShuffledNamesHashEqual(t *testing.T) {
	dev := gpusim.V100()
	launch := gpusim.Launch{GridDim: 2, BlockDim: 32}
	opts := pipeline.Options{Config: pipeline.UU, Factor: 2}
	for seed := int64(1); seed <= 25; seed++ {
		k := harden.Generate(seed)
		canon1, err := CanonicalIR(k.F)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		key1 := Fingerprint(canon1, opts, dev, launch, k.MemSize, k.Args, "", "", false)

		// Shuffle every name on a clone.
		rng := rand.New(rand.NewSource(seed * 7919))
		c := ir.Clone(k.F)
		c.Name = fmt.Sprintf("renamed%d", rng.Intn(1000))
		for _, p := range c.Params {
			p.Name = fmt.Sprintf("arg%d_%d", p.Index, rng.Intn(1000))
		}
		for i, b := range c.Blocks() {
			b.Name = fmt.Sprintf("blk%d_%d", i, rng.Intn(1000))
		}
		vn := 0
		for _, b := range c.Blocks() {
			for _, in := range b.Instrs() {
				if in.Type() != ir.Void {
					in.SetName(fmt.Sprintf("x%d_%d", vn, rng.Intn(1000)))
					vn++
				}
			}
		}
		canon2, err := CanonicalIR(c)
		if err != nil {
			t.Fatalf("seed %d: shuffled: %v", seed, err)
		}
		if canon2 != canon1 {
			t.Fatalf("seed %d: canonical IR differs under renaming:\n%s\nvs\n%s", seed, canon1, canon2)
		}
		key2 := Fingerprint(canon2, opts, dev, launch, k.MemSize, k.Args, "", "", false)
		if key2 != key1 {
			t.Fatalf("seed %d: fingerprint differs under renaming", seed)
		}
	}
}

// TestFingerprintSensitivity pins what the key covers and what it excludes:
// semantic inputs (config, factor, device model, launch, args, chaos,
// artifact selection) change the key; the execution backend does not.
func TestFingerprintSensitivity(t *testing.T) {
	k := harden.Generate(3)
	canon, err := CanonicalIR(k.F)
	if err != nil {
		t.Fatal(err)
	}
	dev := gpusim.V100()
	launch := gpusim.Launch{GridDim: 2, BlockDim: 32}
	opts := pipeline.Options{Config: pipeline.UU, Factor: 2}
	base := Fingerprint(canon, opts, dev, launch, k.MemSize, k.Args, "", "", false)

	vary := map[string]string{}
	o2 := opts
	o2.Factor = 4
	vary["factor"] = Fingerprint(canon, o2, dev, launch, k.MemSize, k.Args, "", "", false)
	o3 := opts
	o3.Config = pipeline.Baseline
	vary["config"] = Fingerprint(canon, o3, dev, launch, k.MemSize, k.Args, "", "", false)
	vary["device"] = Fingerprint(canon, opts, gpusim.MinSPPC(), launch, k.MemSize, k.Args, "", "", false)
	vary["launch"] = Fingerprint(canon, opts, dev, gpusim.Launch{GridDim: 4, BlockDim: 32}, k.MemSize, k.Args, "", "", false)
	vary["chaos"] = Fingerprint(canon, opts, dev, launch, k.MemSize, k.Args, "panic", "", false)
	vary["profile"] = Fingerprint(canon, opts, dev, launch, k.MemSize, k.Args, "", "", true)
	for dim, key := range vary {
		if key == base {
			t.Errorf("varying %s did not change the fingerprint", dim)
		}
	}

	execDev := dev
	execDev.Exec = gpusim.ExecSwitch // V100 defaults to the threaded core
	if Fingerprint(canon, opts, execDev, launch, k.MemSize, k.Args, "", "", false) != base {
		t.Errorf("execution backend changed the fingerprint; it is speed-only and must not")
	}
}

// TestFingerprintHeuristicSensitivity pins the PGO-relevant half of the key:
// the resolved per-loop override set, the selective mode, and the C/UMax
// knobs all fork the cache entry, while a request spelling the paper defaults
// explicitly shares the entry of one omitting them (the pipeline treats them
// identically, so the cache must too).
func TestFingerprintHeuristicSensitivity(t *testing.T) {
	k := harden.Generate(3)
	canon, err := CanonicalIR(k.F)
	if err != nil {
		t.Fatal(err)
	}
	dev := gpusim.V100()
	launch := gpusim.Launch{GridDim: 2, BlockDim: 32}
	fp := func(opts pipeline.Options) string {
		return Fingerprint(canon, opts, dev, launch, k.MemSize, k.Args, "", "", false)
	}
	opts := pipeline.Options{Config: pipeline.UUHeuristic}
	base := fp(opts)

	explicit := opts
	explicit.Heuristic = core.DefaultHeuristicParams() // C=1024, UMax=8 spelled out
	if fp(explicit) != base {
		t.Errorf("explicit paper defaults fork the cache entry; they resolve identically and must share it")
	}
	emptyOv := opts
	emptyOv.Heuristic.Overrides = map[int32]core.LoopOverride{}
	if fp(emptyOv) != base {
		t.Errorf("an empty override set fork the cache entry")
	}

	vary := map[string]pipeline.Options{}
	o := opts
	o.Heuristic.C = 512
	vary["heuristic-c"] = o
	o = opts
	o.Heuristic.UMax = 4
	vary["heuristic-umax"] = o
	o = opts
	o.Heuristic.SkipDivergent = true
	vary["skip-divergent"] = o
	o = opts
	o.Heuristic.Selective = true
	vary["selective"] = o
	o = opts
	o.Heuristic.Overrides = map[int32]core.LoopOverride{10: {Deny: true}}
	vary["override-deny"] = o
	o = opts
	o.Heuristic.Overrides = map[int32]core.LoopOverride{10: {Force: true, FactorCap: 2}}
	vary["override-force"] = o

	seen := map[string]string{base: "base"}
	for dim, vo := range vary {
		key := fp(vo)
		if prev, dup := seen[key]; dup {
			t.Errorf("varying %s collides with %s", dim, prev)
		}
		seen[key] = dim
	}
}
