package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// chaosOutcome is one request's fate during the storm.
type chaosOutcome struct {
	kind    string  // request class that was sent
	status  int     // HTTP status (0 = client-side disconnect)
	code    string  // structured error code ("" for 200s)
	ms      float64 // wall-clock latency
	badBody bool    // response body was not valid structured JSON
}

// TestChaosLoad is the load-test harness the acceptance criteria call for:
// 8 concurrent clients fire 240 requests mixing healthy kernels (with
// duplicates, so the cache and singleflight see real traffic),
// ChaosPass-poisoned kernels, malformed and oversized bodies, and abrupt
// client disconnects. The invariants: the server never dies (every
// non-disconnected request gets a structured JSON response), failures are
// the structured classes the API defines, latency stays bounded, and the
// pool serves cleanly after the storm.
func TestChaosLoad(t *testing.T) {
	const (
		clients     = 8
		perClient   = 30
		total       = clients * perClient
		p99BoundSec = 30.0
	)
	s, ts := newTestServer(t, Options{Workers: 4, QueueDepth: 8, RetryAfter: time.Second})

	outcomes := make([]chaosOutcome, total)
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			httpc := &http.Client{}
			for i := 0; i < perClient; i++ {
				n := cl*perClient + i
				outcomes[n] = fireChaos(t, httpc, ts.URL, n)
			}
		}(cl)
	}
	wg.Wait()

	byKind := map[string]map[string]int{}
	var lat []float64
	for _, o := range outcomes {
		if byKind[o.kind] == nil {
			byKind[o.kind] = map[string]int{}
		}
		label := o.code
		if label == "" {
			label = fmt.Sprintf("http-%d", o.status)
		}
		byKind[o.kind][label]++
		if o.badBody {
			t.Errorf("%s request got a non-structured response (status %d)", o.kind, o.status)
		}
		if o.status != 0 {
			lat = append(lat, o.ms)
		}
	}

	// Per-class invariants: healthy work succeeds or is shed/deadline —
	// never panics the server; poisoned kernels are exactly the structured
	// 500; garbage is rejected at the door.
	for kind, labels := range byKind {
		for label, count := range labels {
			ok := false
			switch kind {
			case "healthy", "contained":
				ok = label == "http-200" || label == "shed" || label == "deadline"
			case "poisoned":
				// panic → structured 500; corrupt → the verifier/codegen
				// rejects the IR with a structured 422.
				ok = label == "panic" || label == "compile-failed" ||
					label == "exec-failed" || label == "shed" || label == "deadline"
			case "malformed":
				ok = label == "malformed" || label == "bad-request"
			case "oversized":
				ok = label == "oversized"
			case "disconnect":
				ok = label == "http-0" || label == "http-200" || label == "shed" || label == "deadline"
			}
			if !ok {
				t.Errorf("%s requests saw unexpected outcome %s (%d times)", kind, label, count)
			}
		}
	}

	sort.Float64s(lat)
	p50 := lat[len(lat)/2]
	p99 := lat[len(lat)*99/100]
	if p99 > p99BoundSec*1000 {
		t.Errorf("p99 latency %.1fms exceeds the %.0fs bound", p99, p99BoundSec)
	}
	t.Logf("chaos storm: %d requests over %d clients; outcomes %v; p50 %.1fms p99 %.1fms",
		total, clients, byKind, p50, p99)

	// Phase-attribution consistency: every request recorded an end-to-end
	// and a frontend sample, and the end-to-end p99 is explained by the
	// per-phase p99s within the tolerance docs/OBSERVABILITY.md documents
	// (1.5× + 250 ms; phase histograms pool different request populations
	// — compile/simulate come from pool executions only — so the sums are
	// consistent, not exact).
	// A disconnected client returns before its server-side handler wakes
	// and records the 499, so give the histograms a moment to settle.
	reqSnap := s.tel.request.Snapshot()
	for settle := time.Now(); reqSnap.Count < total && time.Since(settle) < 10*time.Second; {
		time.Sleep(50 * time.Millisecond)
		reqSnap = s.tel.request.Snapshot()
	}
	if reqSnap.Count != total {
		t.Errorf("request histogram saw %d samples, want %d", reqSnap.Count, total)
	}
	phases := s.tel.phaseSnapshots()
	if fc := phases["frontend"].Count; fc != total {
		t.Errorf("frontend phase saw %d samples, want %d (every request enters the frontend)", fc, total)
	}
	var sumPhaseP99 float64
	for name, snap := range phases {
		p := float64(snap.Quantile(0.99)) / 1e6
		sumPhaseP99 += p
		t.Logf("phase %s: n=%d p99 %.1fms", name, snap.Count, p)
	}
	e2eP99 := float64(reqSnap.Quantile(0.99)) / 1e6
	if e2eP99 <= 0 {
		t.Error("end-to-end p99 is zero after the storm")
	}
	if e2eP99 > 1.5*sumPhaseP99+250 {
		t.Errorf("end-to-end p99 %.1fms is not explained by the summed phase p99s %.1fms (tolerance 1.5x + 250ms): unattributed time in the request path", e2eP99, sumPhaseP99)
	}

	// Zero process deaths: the very same server still serves.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz after the storm: %d", resp.StatusCode)
	}
	if status, data := post(t, ts.URL, testRequest(10)); status != 200 {
		t.Fatalf("clean request after the storm: status %d (%s)", status, data)
	}
}

// fireChaos sends request n of the storm, classed by round-robin: 60%
// healthy (half duplicates), ~13% poisoned, ~10% contained-chaos, ~7%
// malformed, ~7% oversized, ~3% disconnect.
func fireChaos(t *testing.T, httpc *http.Client, url string, n int) chaosOutcome {
	t.Helper()
	var kind string
	var body []byte
	var timeout time.Duration
	switch m := n % 30; {
	case m < 18:
		kind = "healthy"
		req := testRequest(int64(1000 * (1 + n%3)))
		// Half the healthy traffic duplicates a small key set so the cache
		// and singleflight carry real load; the rest varies the factor.
		if m%2 == 0 {
			req.Factor = 2
		} else {
			req.Factor = 2 + 2*(n%8)
		}
		body, _ = json.Marshal(req)
	case m < 22:
		kind = "poisoned"
		req := testRequest(1000)
		req.Chaos = []string{"panic", "corrupt"}[n%2]
		req.DeadlineMs = 5000 // a corrupted program that still lowers must not burn the default deadline
		body, _ = json.Marshal(req)
	case m < 25:
		kind = "contained"
		req := testRequest(1000)
		req.Chaos = "panic"
		req.Contain = true
		body, _ = json.Marshal(req)
	case m < 27:
		kind = "malformed"
		body = []byte([]string{`{broken`, `{"app":"xsbench","source":"both"}`, `{"source":"kernel k( {"}`}[n%3])
	case m < 29:
		kind = "oversized"
		body = []byte(`{"source":"` + strings.Repeat("z", 2<<20) + `"}`)
	default:
		kind = "disconnect"
		req := testRequest(100_000_000)
		req.DeadlineMs = 30_000
		body, _ = json.Marshal(req)
		timeout = 100 * time.Millisecond
	}

	c := httpc
	if timeout > 0 {
		c = &http.Client{Timeout: timeout}
	}
	start := time.Now()
	resp, err := c.Post(url+"/compile", "application/json", bytes.NewReader(body))
	o := chaosOutcome{kind: kind, ms: float64(time.Since(start).Microseconds()) / 1e3}
	if err != nil {
		return o // client-side disconnect / timeout: status 0
	}
	defer resp.Body.Close()
	o.status = resp.StatusCode
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == 200 {
		var r Response
		o.badBody = json.Unmarshal(data, &r) != nil || r.Key == ""
		return o
	}
	var e Error
	if json.Unmarshal(data, &e) != nil || e.Code == "" {
		o.badBody = true
		return o
	}
	o.code = e.Code
	return o
}

// TestDrainMidLoad is the SIGTERM-under-fire drill: with a storm of
// healthy requests in flight, Drain must stop intake (new work sees 503
// "draining"), resolve every in-flight request with a structured outcome
// by the drain deadline, and flush final stats. This is the in-process
// twin of cmd/uud's signal path, which calls exactly this method.
func TestDrainMidLoad(t *testing.T) {
	s := New(Options{Workers: 2, QueueDepth: 4})
	ts := newLocalServer(t, s)

	const clients = 8
	results := make(chan chaosOutcome, clients*4)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			httpc := &http.Client{}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req := testRequest(int64(3_000_000 + cl*1000 + i)) // distinct keys, ~seconds of work
				req.DeadlineMs = 20_000
				body, _ := json.Marshal(req)
				start := time.Now()
				resp, err := httpc.Post(ts.URL+"/compile", "application/json", bytes.NewReader(body))
				o := chaosOutcome{kind: "drain-load", ms: float64(time.Since(start).Microseconds()) / 1e3}
				if err == nil {
					data, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					o.status = resp.StatusCode
					if resp.StatusCode != 200 {
						var e Error
						if json.Unmarshal(data, &e) != nil || e.Code == "" {
							o.badBody = true
						}
						o.code = e.Code
					}
				}
				results <- o
				if o.status == 503 { // draining: stop this client
					return
				}
			}
		}(cl)
	}

	time.Sleep(400 * time.Millisecond) // let the pool and queue fill
	drainStart := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	snap := s.Drain(ctx)
	drainTook := time.Since(drainStart)
	close(stop)
	wg.Wait()
	close(results)

	if drainTook > 10*time.Second {
		t.Fatalf("drain took %s, want prompt completion after the deadline cancels stragglers", drainTook)
	}
	counts := map[string]int{}
	for o := range results {
		label := o.code
		if label == "" {
			label = fmt.Sprintf("http-%d", o.status)
		}
		counts[label]++
		if o.badBody {
			t.Errorf("drain-load request got a non-structured response (status %d)", o.status)
		}
		switch label {
		case "http-200", "draining", "canceled", "deadline", "shed":
		default:
			t.Errorf("drain-load request saw unexpected outcome %s", label)
		}
	}
	if status, data := post(t, ts.URL, testRequest(10)); status != 503 {
		t.Errorf("request after drain: status %d (%s), want 503 draining", status, data)
	}
	if snap["serve_requests_total"] == 0 {
		t.Fatalf("drain snapshot lost counters: %v", snap)
	}
	t.Logf("drain under load: took %s, outcomes %v, final stats %v", drainTook, counts, snap)
}

// newLocalServer wraps httptest for servers whose Drain the test calls
// itself.
func newLocalServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}
