package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestServeCounterNamesDocumented is the metrics-documentation lint for
// the daemon, mirroring gpusim's TestProfCounterNamesDocumented: every
// counter /stats can emit must have a row in docs/METRICS.md, so
// operators never see a counter the documentation doesn't explain. CI
// runs this as a dedicated step.
func TestServeCounterNamesDocumented(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("..", "..", "docs", "METRICS.md"))
	if err != nil {
		t.Fatalf("reading metrics documentation: %v", err)
	}
	for _, name := range counterNames {
		if !strings.Contains(string(doc), "`"+name+"`") {
			t.Errorf("counter %q is not documented in docs/METRICS.md", name)
		}
	}
	// And the list itself must match what snapshot() actually emits.
	snap := (&counters{}).snapshot()
	if len(snap) != len(counterNames) {
		t.Fatalf("snapshot emits %d counters, counterNames lists %d", len(snap), len(counterNames))
	}
	for _, name := range counterNames {
		if _, ok := snap[name]; !ok {
			t.Errorf("counterNames lists %q but snapshot never emits it", name)
		}
	}
}
