package serve

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestServeCounterNamesDocumented is the metrics-documentation lint for
// the daemon, mirroring gpusim's TestProfCounterNamesDocumented: every
// counter /stats can emit must have a row in docs/METRICS.md, so
// operators never see a counter the documentation doesn't explain. CI
// runs this as a dedicated step.
func TestServeCounterNamesDocumented(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("..", "..", "docs", "METRICS.md"))
	if err != nil {
		t.Fatalf("reading metrics documentation: %v", err)
	}
	for _, name := range counterNames {
		if !strings.Contains(string(doc), "`"+name+"`") {
			t.Errorf("counter %q is not documented in docs/METRICS.md", name)
		}
	}
	// And the list itself must match what snapshot() actually emits.
	snap := (&counters{}).snapshot()
	if len(snap) != len(counterNames) {
		t.Fatalf("snapshot emits %d counters, counterNames lists %d", len(snap), len(counterNames))
	}
	for _, name := range counterNames {
		if _, ok := snap[name]; !ok {
			t.Errorf("counterNames lists %q but snapshot never emits it", name)
		}
	}

	// The same lint covers the /metrics histogram and gauge families and
	// the phase label values.
	for _, name := range histogramNames {
		if !strings.Contains(string(doc), "`"+name+"`") {
			t.Errorf("histogram %q is not documented in docs/METRICS.md", name)
		}
	}
	for _, name := range gaugeNames {
		if !strings.Contains(string(doc), "`"+name+"`") {
			t.Errorf("gauge %q is not documented in docs/METRICS.md", name)
		}
	}
	for _, name := range phaseNames {
		if !strings.Contains(string(doc), "`"+name+"`") {
			t.Errorf("phase %q is not documented in docs/METRICS.md", name)
		}
	}
}

// TestMetricsExpositionMatchesNameLists pins that every family in
// histogramNames and gaugeNames (plus every counter) actually appears in
// a live /metrics scrape — the lists and the registry can't drift.
func TestMetricsExpositionMatchesNameLists(t *testing.T) {
	s := New(Options{Workers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
	}()
	var sb strings.Builder
	if err := s.tel.reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	scrape := sb.String()
	var all []string
	all = append(all, counterNames...)
	all = append(all, histogramNames...)
	all = append(all, gaugeNames...)
	for _, name := range all {
		if !strings.Contains(scrape, "# TYPE "+name+" ") {
			t.Errorf("/metrics scrape missing family %q", name)
		}
	}
	for _, name := range phaseNames {
		if !strings.Contains(scrape, `phase="`+name+`"`) {
			t.Errorf("/metrics scrape missing phase series %q", name)
		}
	}
}
