// Package pipeline assembles the optimization pass pipelines the paper's
// evaluation compares (Section IV-B): baseline -O3, -O3 + unroll, -O3 +
// unmerge, -O3 + u&u, and -O3 + the u&u heuristic. The loop transformation
// is placed early in the pipeline — right after SSA construction and a first
// canonicalization round — "to maximize subsequent optimizations enabled
// through those transformations", exactly as the paper positions its pass.
//
// The pipeline is described declaratively as a sequence of PhaseSpecs and
// executed by a change-driven driver: every pass implements analysis.Pass,
// consumes cached analyses from one analysis.AnalysisManager shared across
// the whole compilation, and declares which analyses it preserved. The
// driver invalidates the cache accordingly after each pass, stops a
// fixpoint phase as soon as a full round reports no change, and records
// per-pass wall time, change flags, and cache traffic in Stats.
package pipeline

import (
	"context"
	"fmt"
	"time"

	"uu/internal/analysis"
	"uu/internal/core"
	"uu/internal/harden"
	"uu/internal/ir"
	"uu/internal/remark"
	"uu/internal/transform"
)

// Config names one of the evaluation's five compiler configurations.
type Config string

// The five configurations of the paper's methodology section.
const (
	Baseline    Config = "baseline"
	UnrollOnly  Config = "unroll"
	UnmergeOnly Config = "unmerge"
	UU          Config = "uu"
	UUHeuristic Config = "uu-heuristic"
)

// Configs lists all configurations in the paper's order.
var Configs = []Config{Baseline, UnrollOnly, UnmergeOnly, UU, UUHeuristic}

// Options selects the configuration and its parameters.
type Options struct {
	Config Config
	// LoopID selects the loop for the per-loop configurations (unroll,
	// unmerge, uu), using the deterministic loop numbering computed on the
	// canonicalized function ("the pass assigns consistent, deterministic
	// unique ids to loops", Section III-C). Ignored by baseline/heuristic.
	LoopID int
	// Factor is the unroll factor for the unroll and uu configurations.
	Factor int
	// Heuristic parameters (uu-heuristic only); zero value means the
	// paper's defaults (c=1024, u_max=8).
	Heuristic core.HeuristicParams
	// Unmerge options (direct-successor ablation, block cap).
	Unmerge core.Options
	// GVN options; zero value means all capabilities enabled.
	GVN *transform.GVNOptions
	// DisableIfConvert removes backend predication from the pipeline
	// (ablation: without it the baseline has no selp-style code).
	DisableIfConvert bool
	// VerifyEachPass runs the IR verifier after every pass (tests).
	VerifyEachPass bool
	// Contain runs every pass invocation under a harden.Guard: the IR is
	// snapshotted before the pass, panics are recovered, and — with
	// VerifyEachPass — verifier-rejected output is rolled back too. A
	// contained failure skips the pass (the function keeps its pre-pass
	// form), is recorded in Stats.Failures, and never aborts compilation.
	Contain bool
	// FailureDumpDir, when set with Contain, receives one pre-pass IR file
	// per contained failure.
	FailureDumpDir string
	// Inject appends extra passes in their own phase right after
	// canonicalization — the hook fault-injection tests and the fuzzer's
	// pass bisection use to place a known-bad pass at a known position.
	Inject []analysis.Pass
	// StopAfter, when > 0, truncates the pipeline after that many pass
	// invocations (the loop transformation counts as one). The fuzzer's
	// reducer bisects this limit to find the first invocation after which
	// a failure reproduces.
	StopAfter int
	// Remarks, when non-nil, collects optimization remarks from every pass
	// of this compilation. The collector is attached to the compilation's
	// AnalysisManager so passes reach it without signature changes. Remark
	// content is deterministic: no timestamps, no pointers, emission order
	// only.
	Remarks *remark.Collector
	// Trace, when non-nil, records wall-clock spans for the pipeline, each
	// pass invocation, and each phase. Unlike remarks, traces carry real
	// timestamps and are not expected to be reproducible byte-for-byte.
	Trace *remark.Trace
	// TraceTID is the trace lane (Chrome trace_event tid) this compilation's
	// spans are tagged with; parallel harness workers use their worker index
	// so lanes render separately.
	TraceTID int
}

// PhaseSpec declares one stage of the pipeline: an ordered pass list run up
// to MaxRounds times. The driver re-runs the list only while some pass in
// the previous round reported a change, so a phase with MaxRounds > 1 is a
// bounded fixpoint iteration. Deterministic passes leave unchanged IR
// unchanged, so stopping early yields byte-identical output to always
// running MaxRounds rounds.
type PhaseSpec struct {
	Name      string
	Passes    []analysis.Pass
	MaxRounds int
}

// PassTime records the wall-clock cost of one pass invocation, whether it
// changed the function, and the analysis-cache traffic (hits, misses,
// invalidations) attributable to it.
type PassTime struct {
	Name     string
	Duration time.Duration
	Changed  bool
	Cache    analysis.CacheStats
}

// PhaseRounds records how many rounds of a fixpoint phase actually ran.
type PhaseRounds struct {
	Phase     string
	Rounds    int
	MaxRounds int
}

// Stats reports what the pipeline did.
type Stats struct {
	CompileTime time.Duration
	// VerifyTime is the total verifier wall time when VerifyEachPass is on.
	// It is included in CompileTime (the verifier really ran) but reported
	// separately — and as "verify" PassTimes entries — so measurements of
	// verified runs can subtract it instead of silently charging it to the
	// optimizer.
	VerifyTime time.Duration
	PassTimes  []PassTime
	// Rounds lists, per fixpoint phase, how many rounds ran before the
	// change-driven driver stopped.
	Rounds []PhaseRounds
	// Analysis is the compilation's total analysis-cache traffic.
	Analysis analysis.CacheStats
	// Decisions taken by the heuristic (uu-heuristic only).
	Decisions []core.Decision
	// Skips records the loops the heuristic considered and rejected, with
	// reasons (uu-heuristic only). The profiler's predicted-vs-measured
	// report cross-references these to tell CORRECT-SKIP from MISPREDICT.
	Skips []core.SkipRecord
	// LoopTransformed reports whether the selected loop transformation
	// actually applied (false for baseline or when it bailed out).
	LoopTransformed bool
	// Failures lists the pass failures contained during this compilation
	// (Options.Contain). Empty on a healthy run.
	Failures []harden.PassFailure
}

// PassTimeByName aggregates pass times by pass name.
func (s *Stats) PassTimeByName() map[string]time.Duration {
	m := map[string]time.Duration{}
	for _, pt := range s.PassTimes {
		m[pt.Name] += pt.Duration
	}
	return m
}

// canonicalizationPasses is the phase-1 pipeline: SSA construction and a
// first canonicalization round. This list is the single source of truth for
// "the canonical form" — loop IDs are assigned on its output, and
// CanonicalLoopCount replays exactly this list.
func canonicalizationPasses() []analysis.Pass {
	return []analysis.Pass{
		transform.Mem2RegPass(),
		transform.SimplifyCFGPass(),
		transform.InstSimplifyPass(),
		transform.DCEPass(),
	}
}

// cleanupPasses is the -O3-style middle-end round run (to fixpoint) after
// the loop transformation, after automatic unrolling, and after predication.
func cleanupPasses(gvnOpts transform.GVNOptions) []analysis.Pass {
	return []analysis.Pass{
		transform.SCCPPass(),
		transform.SimplifyCFGPass(),
		transform.InstSimplifyPass(),
		transform.InstCombinePass(),
		transform.GVNPass(gvnOpts),
		transform.DCEPass(),
		transform.SimplifyCFGPass(),
	}
}

// driver executes PhaseSpecs against one function and its analysis manager,
// recording instrumentation into st.
type driver struct {
	f    *ir.Function
	am   *analysis.AnalysisManager
	st   *Stats
	opts Options
	// ctx, when non-nil, is polled before every pass invocation so a
	// deadline or cancellation stops compilation at the next pass boundary
	// (OptimizeCtx). Passes themselves are not interruptible — they are
	// short — so one pass is the cancellation granularity.
	ctx context.Context
	// guard contains pass failures when Options.Contain is set (nil
	// otherwise). invoked counts pass invocations for Options.StopAfter.
	guard   *harden.Guard
	invoked int
}

// ctxErr reports the driver's context error, wrapped with pipeline
// attribution, or nil.
func (d *driver) ctxErr() error {
	if d.ctx == nil {
		return nil
	}
	if err := d.ctx.Err(); err != nil {
		return fmt.Errorf("pipeline %s: %s: %w", d.opts.Config, d.f.Name, err)
	}
	return nil
}

// limitReached consumes one invocation slot and reports whether the
// StopAfter truncation point has been passed. Skipped invocations leave no
// PassTimes entry, so Stats.PassTimes lists exactly what ran.
func (d *driver) limitReached() bool {
	if d.opts.StopAfter > 0 && d.invoked >= d.opts.StopAfter {
		return true
	}
	d.invoked++
	return false
}

// runPass executes one pass: time it, apply its invalidation declaration,
// attribute the cache traffic to it, and optionally verify the IR. Under
// containment (Options.Contain) the invocation runs through the guard:
// a panic or verifier rejection rolls the function back and is recorded
// instead of propagating.
func (d *driver) runPass(p analysis.Pass) (bool, error) {
	if err := d.ctxErr(); err != nil {
		return false, err
	}
	if d.limitReached() {
		return false, nil
	}
	before := d.am.Stats()
	t0 := time.Now()
	if d.guard != nil {
		pa, vd, failed := d.guard.RunPass(p, d.f, d.am)
		dur := time.Since(t0) - vd
		d.am.Invalidate(pa)
		d.tracePass(p.Name(), t0, dur, pa.Changed())
		d.st.PassTimes = append(d.st.PassTimes, PassTime{
			Name:     p.Name(),
			Duration: dur,
			Changed:  pa.Changed(),
			Cache:    d.am.Stats().Sub(before),
		})
		if vd > 0 {
			d.st.VerifyTime += vd
			d.st.PassTimes = append(d.st.PassTimes, PassTime{Name: "verify", Duration: vd})
		}
		_ = failed // recorded in the guard; aggregated into Stats at the end
		return pa.Changed(), nil
	}
	pa := p.Run(d.f, d.am)
	dur := time.Since(t0)
	d.am.Invalidate(pa)
	d.tracePass(p.Name(), t0, dur, pa.Changed())
	d.st.PassTimes = append(d.st.PassTimes, PassTime{
		Name:     p.Name(),
		Duration: dur,
		Changed:  pa.Changed(),
		Cache:    d.am.Stats().Sub(before),
	})
	if d.opts.VerifyEachPass {
		v0 := time.Now()
		err := ir.Verify(d.f)
		vd := time.Since(v0)
		d.st.VerifyTime += vd
		d.st.PassTimes = append(d.st.PassTimes, PassTime{Name: "verify", Duration: vd})
		if err != nil {
			return false, fmt.Errorf("pipeline %s: after %s: %w", d.opts.Config, p.Name(), err)
		}
	}
	return pa.Changed(), nil
}

// tracePass records one pass invocation as a trace span. Args are only
// built when tracing is on.
func (d *driver) tracePass(name string, t0 time.Time, dur time.Duration, changed bool) {
	if !d.opts.Trace.Enabled() {
		return
	}
	d.opts.Trace.Complete(d.opts.TraceTID, name, "pass", t0, dur,
		map[string]any{"function": d.f.Name, "changed": changed})
}

// runPhase executes a phase's rounds, stopping after the first round in
// which no pass reported a change.
func (d *driver) runPhase(ph PhaseSpec) error {
	defer d.opts.Trace.Span(d.opts.TraceTID, "phase:"+ph.Name, "pipeline")()
	rounds := 0
	for ; rounds < ph.MaxRounds; rounds++ {
		roundChanged := false
		for _, p := range ph.Passes {
			changed, err := d.runPass(p)
			if err != nil {
				return err
			}
			if changed {
				roundChanged = true
			}
		}
		if !roundChanged {
			rounds++
			break
		}
	}
	d.st.Rounds = append(d.st.Rounds, PhaseRounds{ph.Name, rounds, ph.MaxRounds})
	return nil
}

// Optimize runs the selected configuration's pipeline on f in place.
func Optimize(f *ir.Function, opts Options) (*Stats, error) {
	return OptimizeCtx(context.Background(), f, opts)
}

// OptimizeCtx is Optimize under a context: cancellation or deadline expiry
// is checked before every pass invocation and aborts the compilation with
// an error wrapping the context's (match with errors.Is). The function is
// left in whatever intermediate form the last completed pass produced —
// callers that canceled are expected to discard it.
func OptimizeCtx(ctx context.Context, f *ir.Function, opts Options) (*Stats, error) {
	st := &Stats{}
	switch opts.Config {
	case Baseline, UnrollOnly, UnmergeOnly, UU, UUHeuristic:
	default:
		return st, fmt.Errorf("pipeline: unknown config %q", opts.Config)
	}
	start := time.Now()
	am := analysis.NewAnalysisManager(f)
	am.SetRemarks(opts.Remarks)
	d := &driver{f: f, am: am, st: st, opts: opts}
	if ctx != nil && ctx.Done() != nil {
		d.ctx = ctx
	}
	if opts.Contain {
		d.guard = &harden.Guard{Verify: opts.VerifyEachPass, DumpDir: opts.FailureDumpDir}
	}
	gvnOpts := transform.DefaultGVNOptions()
	if opts.GVN != nil {
		gvnOpts = *opts.GVN
	}

	// Phase 1: SSA construction and canonicalization. Loop IDs are assigned
	// on this canonical form, identically across configurations.
	if err := d.runPhase(PhaseSpec{"canonicalize", canonicalizationPasses(), 1}); err != nil {
		return st, err
	}

	// Injected passes (fault-injection tests, fuzz bisection) run in their
	// own phase right after canonicalization.
	if len(opts.Inject) > 0 {
		if err := d.runPhase(PhaseSpec{"inject", opts.Inject, 1}); err != nil {
			return st, err
		}
	}

	// Phase 2: the loop transformation under evaluation, placed early. Its
	// error (unknown loop, untransformable shape) does not stop the
	// pipeline: the remaining phases still run and the error is returned at
	// the end, so callers get both a diagnosis and a valid compilation.
	skipAuto := map[*ir.Block]bool{}
	loopErr := d.runLoopTransform(skipAuto)
	if opts.VerifyEachPass && d.guard == nil {
		// Under containment the guard already verified (and rolled back on
		// rejection) inside runLoopTransform; here the rejection is fatal.
		// Accounted like every other verify so the pass schedule is
		// identical with and without containment.
		v0 := time.Now()
		err := ir.Verify(f)
		vd := time.Since(v0)
		st.VerifyTime += vd
		st.PassTimes = append(st.PassTimes, PassTime{Name: "verify", Duration: vd})
		if err != nil {
			return st, fmt.Errorf("pipeline %s: after loop pass: %w", opts.Config, err)
		}
	}

	// Phase 3: the -O3-style middle end that exploits the transformation,
	// then one loop-optimization sweep.
	cleanup := cleanupPasses(gvnOpts)
	if err := d.runPhase(PhaseSpec{"cleanup", cleanup, 3}); err != nil {
		return st, err
	}
	if err := d.runPhase(PhaseSpec{"loop-opts", []analysis.Pass{
		transform.LICMPass(),
		transform.GVNPass(gvnOpts),
		transform.DCEPass(),
	}, 1}); err != nil {
		return st, err
	}

	// Phase 4: baseline automatic unrolling (skips transformed loops), then
	// another cleanup fixpoint to evaluate fully unrolled loops.
	if err := d.runPhase(PhaseSpec{"auto-unroll", []analysis.Pass{
		transform.AutoUnrollPass(skipAuto),
	}, 1}); err != nil {
		return st, err
	}
	if err := d.runPhase(PhaseSpec{"cleanup-post-unroll", cleanup, 2}); err != nil {
		return st, err
	}

	// Phase 5: backend-style predication (selp formation) and final cleanup.
	if !opts.DisableIfConvert {
		if err := d.runPhase(PhaseSpec{"ifconvert", []analysis.Pass{
			transform.IfConvertPass(),
		}, 1}); err != nil {
			return st, err
		}
	}
	if err := d.runPhase(PhaseSpec{"cleanup-final", cleanup, 1}); err != nil {
		return st, err
	}

	st.Analysis = am.Stats()
	st.CompileTime = time.Since(start)
	if opts.Trace.Enabled() {
		opts.Trace.Complete(opts.TraceTID, "optimize:"+f.Name, "pipeline", start,
			st.CompileTime, map[string]any{"config": string(opts.Config)})
	}
	if d.guard != nil {
		st.Failures = d.guard.Failures()
	}
	if loopErr != nil {
		return st, loopErr
	}
	return st, nil
}

// runLoopTransform executes phase 2: the config-specific loop
// transformation, instrumented like a single pass named
// "<config>-loop-pass". Transformed loop headers are added to skipAuto so
// automatic unrolling leaves them alone. The analysis manager is shared
// with the transformation and conservatively invalidated afterwards: the
// loop passes normalize loops (preheader/LCSSA) even when they fail.
func (d *driver) runLoopTransform(skipAuto map[*ir.Block]bool) error {
	if err := d.ctxErr(); err != nil {
		return err
	}
	if d.limitReached() {
		return nil
	}
	f, st, opts := d.f, d.st, d.opts
	markSkip := func(header *ir.Block) { skipAuto[header] = true }
	var loopErr error
	before := d.am.Stats()
	t0 := time.Now()
	var verifyDur time.Duration
	run := func() analysis.PreservedAnalyses {
		d.loopTransformBody(skipAuto, markSkip, &loopErr)
		return analysis.If(st.LoopTransformed, analysis.PreserveNone())
	}
	if d.guard != nil {
		var failed bool
		_, verifyDur, failed = d.guard.Run(string(opts.Config)+"-loop-pass", f, d.am, run)
		if failed {
			// The rollback undid any partial transformation; report the
			// loop as untouched so auto-unroll and the harness see the
			// degraded-to-baseline truth. Stale skipAuto entries point at
			// dead pre-rollback blocks and match nothing.
			st.LoopTransformed = false
			st.Decisions = nil
			st.Skips = nil
			loopErr = nil
		}
	} else {
		run()
	}
	d.tracePass(string(opts.Config)+"-loop-pass", t0, time.Since(t0)-verifyDur, st.LoopTransformed)
	st.PassTimes = append(st.PassTimes, PassTime{
		Name:     string(opts.Config) + "-loop-pass",
		Duration: time.Since(t0) - verifyDur,
		Changed:  st.LoopTransformed,
		Cache:    d.am.Stats().Sub(before),
	})
	if verifyDur > 0 {
		st.VerifyTime += verifyDur
		st.PassTimes = append(st.PassTimes, PassTime{Name: "verify", Duration: verifyDur})
	}
	return loopErr
}

// loopTransformBody is the config-specific switch, factored out so the
// guard can run it under containment.
func (d *driver) loopTransformBody(skipAuto map[*ir.Block]bool, markSkip func(*ir.Block), loopErrOut *error) {
	f, st, opts := d.f, d.st, d.opts
	var loopErr error
	switch opts.Config {
	case Baseline:
		// nothing
	case UnrollOnly:
		header, err := d.headerOfLoop(opts.LoopID)
		if err != nil {
			loopErr = err
			break
		}
		l := d.am.LoopInfo().LoopByID(opts.LoopID)
		ok := transform.UnrollLoop(f, l, opts.Factor)
		d.am.InvalidateAll() // UnrollLoop normalizes the loop even on failure
		if ok {
			st.LoopTransformed = true
			markSkip(header)
			if d.am.Remarks().Enabled() {
				d.am.Remarks().Emit(remark.Remark{
					Kind: remark.Passed, Pass: "loop-pass", Name: "Unrolled",
					Function: f.Name, Block: header.Name,
					Args: []remark.Arg{
						remark.Int("Loop", int64(opts.LoopID)),
						remark.Int("Factor", int64(opts.Factor)),
					},
				})
			}
		} else {
			loopErr = fmt.Errorf("pipeline: loop #%d not unrollable", opts.LoopID)
			if d.am.Remarks().Enabled() {
				d.am.Remarks().Emit(remark.Remark{
					Kind: remark.Missed, Pass: "loop-pass", Name: "NotUnrollable",
					Function: f.Name, Block: header.Name,
					Args: []remark.Arg{
						remark.Int("Loop", int64(opts.LoopID)),
						remark.Int("Factor", int64(opts.Factor)),
					},
				})
			}
		}
	case UnmergeOnly, UU:
		factor := opts.Factor
		if opts.Config == UnmergeOnly {
			factor = 1
		}
		header, err := d.headerOfLoop(opts.LoopID)
		if err != nil {
			loopErr = err
			break
		}
		changed, err := core.UnrollAndUnmergeWith(d.am, opts.LoopID, factor, opts.Unmerge)
		d.am.InvalidateAll()
		st.LoopTransformed = changed
		if err != nil {
			loopErr = err
		}
		if changed {
			markSkip(header)
		}
	case UUHeuristic:
		// Fill C/UMax individually so profile-guided fields (Selective,
		// Overrides) survive a zero-valued budget.
		params := opts.Heuristic.FillDefaults()
		st.Decisions, st.Skips = core.ApplyHeuristicWith(d.am, params, opts.Unmerge)
		d.am.InvalidateAll()
		st.LoopTransformed = len(st.Decisions) > 0
		for _, dec := range st.Decisions {
			markSkip(dec.Header)
		}
	}
	*loopErrOut = loopErr
}

func (d *driver) headerOfLoop(id int) (*ir.Block, error) {
	li := d.am.LoopInfo()
	l := li.LoopByID(id)
	if l == nil {
		return nil, fmt.Errorf("pipeline: %s has no loop #%d (%d loops)", d.f.Name, id, len(li.Loops))
	}
	return l.Header, nil
}

// CanonicalLoopCount reports how many loops the per-loop configurations can
// address in f: the loop count after phase-1 canonicalization, which is
// where Optimize assigns the deterministic loop IDs.
//
// NOTE: f is mutated — the canonicalization passes (exactly Optimize's
// phase-1 list) run on it in place. Callers that need the original function
// afterwards must compile a fresh copy.
func CanonicalLoopCount(f *ir.Function) int {
	am := analysis.NewAnalysisManager(f)
	for _, p := range canonicalizationPasses() {
		am.Invalidate(p.Run(f, am))
	}
	return len(am.LoopInfo().Loops)
}
