// Package pipeline assembles the optimization pass pipelines the paper's
// evaluation compares (Section IV-B): baseline -O3, -O3 + unroll, -O3 +
// unmerge, -O3 + u&u, and -O3 + the u&u heuristic. The loop transformation
// is placed early in the pipeline — right after SSA construction and a first
// canonicalization round — "to maximize subsequent optimizations enabled
// through those transformations", exactly as the paper positions its pass.
package pipeline

import (
	"fmt"
	"time"

	"uu/internal/analysis"
	"uu/internal/core"
	"uu/internal/ir"
	"uu/internal/transform"
)

// Config names one of the evaluation's five compiler configurations.
type Config string

// The five configurations of the paper's methodology section.
const (
	Baseline    Config = "baseline"
	UnrollOnly  Config = "unroll"
	UnmergeOnly Config = "unmerge"
	UU          Config = "uu"
	UUHeuristic Config = "uu-heuristic"
)

// Configs lists all configurations in the paper's order.
var Configs = []Config{Baseline, UnrollOnly, UnmergeOnly, UU, UUHeuristic}

// Options selects the configuration and its parameters.
type Options struct {
	Config Config
	// LoopID selects the loop for the per-loop configurations (unroll,
	// unmerge, uu), using the deterministic loop numbering computed on the
	// canonicalized function ("the pass assigns consistent, deterministic
	// unique ids to loops", Section III-C). Ignored by baseline/heuristic.
	LoopID int
	// Factor is the unroll factor for the unroll and uu configurations.
	Factor int
	// Heuristic parameters (uu-heuristic only); zero value means the
	// paper's defaults (c=1024, u_max=8).
	Heuristic core.HeuristicParams
	// Unmerge options (direct-successor ablation, block cap).
	Unmerge core.Options
	// GVN options; zero value means all capabilities enabled.
	GVN *transform.GVNOptions
	// DisableIfConvert removes backend predication from the pipeline
	// (ablation: without it the baseline has no selp-style code).
	DisableIfConvert bool
	// VerifyEachPass runs the IR verifier after every pass (tests).
	VerifyEachPass bool
}

// PassTime records the wall-clock cost of one pass invocation.
type PassTime struct {
	Name     string
	Duration time.Duration
}

// Stats reports what the pipeline did.
type Stats struct {
	CompileTime time.Duration
	PassTimes   []PassTime
	// Decisions taken by the heuristic (uu-heuristic only).
	Decisions []core.Decision
	// LoopTransformed reports whether the selected loop transformation
	// actually applied (false for baseline or when it bailed out).
	LoopTransformed bool
}

// PassTimeByName aggregates pass times by pass name.
func (s *Stats) PassTimeByName() map[string]time.Duration {
	m := map[string]time.Duration{}
	for _, pt := range s.PassTimes {
		m[pt.Name] += pt.Duration
	}
	return m
}

// Optimize runs the selected configuration's pipeline on f in place.
func Optimize(f *ir.Function, opts Options) (*Stats, error) {
	st := &Stats{}
	start := time.Now()
	run := func(name string, pass func(*ir.Function) bool) error {
		t0 := time.Now()
		pass(f)
		st.PassTimes = append(st.PassTimes, PassTime{name, time.Since(t0)})
		if opts.VerifyEachPass {
			if err := ir.Verify(f); err != nil {
				return fmt.Errorf("pipeline %s: after %s: %w", opts.Config, name, err)
			}
		}
		return nil
	}
	gvnOpts := transform.DefaultGVNOptions()
	if opts.GVN != nil {
		gvnOpts = *opts.GVN
	}
	gvn := func(f *ir.Function) bool { return transform.GVN(f, gvnOpts) }

	// Phase 1: SSA construction and canonicalization. Loop IDs are assigned
	// on this canonical form, identically across configurations.
	for _, p := range []struct {
		name string
		pass func(*ir.Function) bool
	}{
		{"mem2reg", transform.Mem2Reg},
		{"simplifycfg", transform.SimplifyCFG},
		{"instsimplify", transform.InstSimplify},
		{"dce", transform.DCE},
	} {
		if err := run(p.name, p.pass); err != nil {
			return st, err
		}
	}

	// Phase 2: the loop transformation under evaluation, placed early.
	skipAuto := map[*ir.Block]bool{}
	markSkip := func(header *ir.Block) { skipAuto[header] = true }
	var loopErr error
	t0 := time.Now()
	switch opts.Config {
	case Baseline:
		// nothing
	case UnrollOnly:
		header, err := headerOfLoop(f, opts.LoopID)
		if err != nil {
			loopErr = err
			break
		}
		dt := analysis.NewDomTree(f)
		li := analysis.NewLoopInfo(f, dt)
		l := li.LoopByID(opts.LoopID)
		if transform.UnrollLoop(f, l, opts.Factor) {
			st.LoopTransformed = true
			markSkip(header)
		} else {
			loopErr = fmt.Errorf("pipeline: loop #%d not unrollable", opts.LoopID)
		}
	case UnmergeOnly, UU:
		factor := opts.Factor
		if opts.Config == UnmergeOnly {
			factor = 1
		}
		header, err := headerOfLoop(f, opts.LoopID)
		if err != nil {
			loopErr = err
			break
		}
		changed, err := core.UnrollAndUnmerge(f, opts.LoopID, factor, opts.Unmerge)
		st.LoopTransformed = changed
		if err != nil {
			loopErr = err
		}
		if changed {
			markSkip(header)
		}
	case UUHeuristic:
		params := opts.Heuristic
		if params.C == 0 && params.UMax == 0 {
			params = core.DefaultHeuristicParams()
		}
		st.Decisions = core.ApplyHeuristic(f, params, opts.Unmerge)
		st.LoopTransformed = len(st.Decisions) > 0
		for _, d := range st.Decisions {
			markSkip(d.Header)
		}
	default:
		return st, fmt.Errorf("pipeline: unknown config %q", opts.Config)
	}
	st.PassTimes = append(st.PassTimes, PassTime{string(opts.Config) + "-loop-pass", time.Since(t0)})
	if opts.VerifyEachPass {
		if err := ir.Verify(f); err != nil {
			return st, fmt.Errorf("pipeline %s: after loop pass: %w", opts.Config, err)
		}
	}

	// Phase 3: the -O3-style middle end that exploits the transformation.
	cleanupRound := []struct {
		name string
		pass func(*ir.Function) bool
	}{
		{"sccp", transform.SCCP},
		{"simplifycfg", transform.SimplifyCFG},
		{"instsimplify", transform.InstSimplify},
		{"instcombine", transform.InstCombine},
		{"gvn", gvn},
		{"dce", transform.DCE},
		{"simplifycfg", transform.SimplifyCFG},
	}
	for round := 0; round < 3; round++ {
		for _, p := range cleanupRound {
			if err := run(p.name, p.pass); err != nil {
				return st, err
			}
		}
	}
	if err := run("licm", transform.LICM); err != nil {
		return st, err
	}
	if err := run("gvn", gvn); err != nil {
		return st, err
	}
	if err := run("dce", transform.DCE); err != nil {
		return st, err
	}

	// Phase 4: baseline automatic unrolling (skips transformed loops), then
	// another cleanup round to evaluate fully unrolled loops.
	if err := run("loop-unroll(auto)", func(f *ir.Function) bool {
		return transform.AutoUnroll(f, skipAuto)
	}); err != nil {
		return st, err
	}
	for round := 0; round < 2; round++ {
		for _, p := range cleanupRound {
			if err := run(p.name, p.pass); err != nil {
				return st, err
			}
		}
	}

	// Phase 5: backend-style predication (selp formation) and final cleanup.
	if !opts.DisableIfConvert {
		if err := run("ifconvert", transform.IfConvert); err != nil {
			return st, err
		}
	}
	for _, p := range cleanupRound {
		if err := run(p.name, p.pass); err != nil {
			return st, err
		}
	}

	st.CompileTime = time.Since(start)
	if loopErr != nil {
		return st, loopErr
	}
	return st, nil
}

func headerOfLoop(f *ir.Function, id int) (*ir.Block, error) {
	dt := analysis.NewDomTree(f)
	li := analysis.NewLoopInfo(f, dt)
	l := li.LoopByID(id)
	if l == nil {
		return nil, fmt.Errorf("pipeline: %s has no loop #%d (%d loops)", f.Name, id, len(li.Loops))
	}
	return l.Header, nil
}

// CanonicalLoopCount reports how many loops the per-loop configurations can
// address in f: the loop count after phase-1 canonicalization, which is
// where Optimize assigns the deterministic loop IDs. f is modified only by
// the canonicalization passes (mem2reg, SimplifyCFG, InstSimplify, DCE),
// which every configuration applies identically anyway.
func CanonicalLoopCount(f *ir.Function) int {
	transform.Mem2Reg(f)
	transform.SimplifyCFG(f)
	transform.InstSimplify(f)
	transform.DCE(f)
	return core.LoopCount(f)
}
