package pipeline

import (
	"math/rand"
	"testing"

	"uu/internal/interp"
	"uu/internal/ir"
	"uu/internal/lang"
)

// The XSBench binary-search kernel (paper Listing 1) exercised across every
// configuration.
const bsearchSrc = `
kernel bsearch(double* restrict A, long* restrict out, long n, double quarry) {
  long lowerLimit = 0;
  long upperLimit = n - 1;
  long length = upperLimit - lowerLimit;
  while (length > 1) {
    long mid = lowerLimit + length / 2;
    if (A[mid] > quarry) {
      upperLimit = mid;
    } else {
      lowerLimit = mid;
    }
    length = upperLimit - lowerLimit;
  }
  out[0] = lowerLimit;
}
`

func runBsearch(t *testing.T, f *ir.Function, a []float64, q float64) int64 {
	t.Helper()
	n := int64(len(a))
	mem := interp.NewMemory(8*n + 8)
	for i, v := range a {
		mem.SetF64(0, int64(i), v)
	}
	args := []interp.Value{interp.IntVal(0), interp.IntVal(8 * n), interp.IntVal(n), interp.FloatVal(q)}
	if _, err := interp.Run(f, args, mem, interp.Env{}); err != nil {
		t.Fatalf("interp: %v\n%s", err, f.String())
	}
	return mem.I64(8*n, 0)
}

func TestAllConfigsPreserveSemantics(t *testing.T) {
	a := make([]float64, 256)
	for i := range a {
		a[i] = float64(i) * 0.25
	}
	want := func(q float64) int64 {
		return runBsearch(t, lang.MustCompileKernel(bsearchSrc), a, q)
	}
	rng := rand.New(rand.NewSource(5))
	queries := make([]float64, 25)
	for i := range queries {
		queries[i] = rng.Float64() * 70
	}

	cases := []Options{
		{Config: Baseline},
		{Config: UUHeuristic},
		{Config: UnmergeOnly, LoopID: 0},
	}
	for _, u := range []int{2, 4, 8} {
		cases = append(cases,
			Options{Config: UnrollOnly, LoopID: 0, Factor: u},
			Options{Config: UU, LoopID: 0, Factor: u})
	}
	for _, opts := range cases {
		opts.VerifyEachPass = true
		f := lang.MustCompileKernel(bsearchSrc)
		if _, err := Optimize(f, opts); err != nil {
			t.Fatalf("%s u%d: %v", opts.Config, opts.Factor, err)
		}
		for _, q := range queries {
			if got := runBsearch(t, f, a, q); got != want(q) {
				t.Fatalf("%s u%d: bsearch(%v) = %d, want %d", opts.Config, opts.Factor, q, got, want(q))
			}
		}
	}
}

func TestBaselinePredicatesXSBenchBody(t *testing.T) {
	// The paper's Listing 4: the baseline emits selects for the
	// upper/lower updates; u&u removes them on the unmerged paths.
	f := lang.MustCompileKernel(bsearchSrc)
	if _, err := Optimize(f, Options{Config: Baseline, VerifyEachPass: true}); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	if n := countOp(f, ir.OpSelect); n < 2 {
		t.Fatalf("baseline has %d selects, want >= 2 (selp-style predication):\n%s", n, f.String())
	}
	// No conditional branch should remain inside the loop body other than
	// the loop exit test.
	if n := countOp(f, ir.OpCondBr); n != 1 {
		t.Fatalf("baseline has %d condbr, want 1:\n%s", n, f.String())
	}

	f2 := lang.MustCompileKernel(bsearchSrc)
	if _, err := Optimize(f2, Options{Config: UU, LoopID: 0, Factor: 2, VerifyEachPass: true}); err != nil {
		t.Fatalf("uu: %v", err)
	}
	if n := countOp(f2, ir.OpCondBr); n < 3 {
		t.Fatalf("u&u should reintroduce branches, got %d condbr:\n%s", n, f2.String())
	}
	// The subtraction disappears on unmerged paths: on the A[mid] > quarry
	// side, upperLimit == mid == lowerLimit + length/2, so
	// upperLimit - lowerLimit folds to length/2 (§V). Count dynamic subs on
	// a query whose search mostly takes that side.
	dynSubs := func(f *ir.Function) int64 {
		a := make([]float64, 256)
		for i := range a {
			a[i] = float64(i)
		}
		n := int64(len(a))
		mem := interp.NewMemory(8*n + 8)
		for i, v := range a {
			mem.SetF64(0, int64(i), v)
		}
		ctr := &interp.Counters{Ops: map[ir.Op]int64{}}
		args := []interp.Value{interp.IntVal(0), interp.IntVal(8 * n), interp.IntVal(n), interp.FloatVal(2.5)}
		if _, err := interp.RunCounted(f, args, mem, interp.Env{}, ctr); err != nil {
			t.Fatalf("interp: %v", err)
		}
		return ctr.Ops[ir.OpSub]
	}
	if base, uu := dynSubs(f), dynSubs(f2); uu >= base {
		t.Fatalf("u&u dynamic subs %d not below baseline %d (expected elimination)", uu, base)
	}
}

func TestUUEnablesMoreThanParts(t *testing.T) {
	// Dynamic instruction counts via the interpreter: u&u executes fewer
	// instructions than unroll-only or unmerge-only at the same factor on
	// the bezier two-condition loop.
	src := `
kernel bez(double* restrict out, long nn0, long kn0, long nkn0) {
  long nn = nn0;
  long kn = kn0;
  long nkn = nkn0;
  double blend = 1.0;
  while (nn >= 1) {
    blend *= (double)nn;
    nn--;
    if (kn > 1) {
      blend /= (double)kn;
      kn--;
    }
    if (nkn > 1) {
      blend /= (double)nkn;
      nkn--;
    }
  }
  out[0] = blend;
}
`
	steps := func(opts Options) int64 {
		f := lang.MustCompileKernel(src)
		opts.VerifyEachPass = true
		if _, err := Optimize(f, opts); err != nil {
			t.Fatalf("%s: %v", opts.Config, err)
		}
		ctr := &interp.Counters{Ops: map[ir.Op]int64{}}
		mem := interp.NewMemory(8)
		args := []interp.Value{interp.IntVal(0), interp.IntVal(40), interp.IntVal(4), interp.IntVal(7)}
		if _, err := interp.RunCounted(f, args, mem, interp.Env{}, ctr); err != nil {
			t.Fatalf("interp: %v", err)
		}
		if got := mem.F64(0, 0); got == 0 {
			t.Fatalf("no result")
		}
		return ctr.Steps
	}
	baseline := steps(Options{Config: Baseline})
	unroll := steps(Options{Config: UnrollOnly, LoopID: 0, Factor: 4})
	unmerge := steps(Options{Config: UnmergeOnly, LoopID: 0})
	uu := steps(Options{Config: UU, LoopID: 0, Factor: 4})
	if uu >= unroll || uu >= unmerge || uu >= baseline {
		t.Fatalf("u&u should execute the fewest instructions: baseline=%d unroll=%d unmerge=%d uu=%d",
			baseline, unroll, unmerge, uu)
	}
}

func TestPipelineStats(t *testing.T) {
	f := lang.MustCompileKernel(bsearchSrc)
	stats, err := Optimize(f, Options{Config: UU, LoopID: 0, Factor: 2})
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if stats.CompileTime <= 0 || len(stats.PassTimes) == 0 {
		t.Fatalf("stats not populated: %+v", stats)
	}
	if !stats.LoopTransformed {
		t.Fatalf("loop not transformed")
	}
	byName := stats.PassTimeByName()
	for _, name := range []string{"mem2reg", "sccp", "gvn", "dce", "simplifycfg"} {
		if _, ok := byName[name]; !ok {
			t.Errorf("pass %s missing from stats", name)
		}
	}
}

func TestBadLoopID(t *testing.T) {
	f := lang.MustCompileKernel(bsearchSrc)
	if _, err := Optimize(f, Options{Config: UU, LoopID: 99, Factor: 2}); err == nil {
		t.Fatalf("no error for bogus loop id")
	}
}

func TestHeuristicDecisionsReported(t *testing.T) {
	f := lang.MustCompileKernel(bsearchSrc)
	stats, err := Optimize(f, Options{Config: UUHeuristic})
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if len(stats.Decisions) != 1 {
		t.Fatalf("want 1 heuristic decision, got %d", len(stats.Decisions))
	}
	d := stats.Decisions[0]
	if d.Factor < 2 || d.Factor > 8 || d.Paths != 2 {
		t.Fatalf("unexpected decision: %+v", d)
	}
}

func countOp(f *ir.Function, op ir.Op) int {
	n := 0
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			if in.Op == op {
				n++
			}
		}
	}
	return n
}
