package pipeline

import (
	"testing"

	"uu/internal/analysis"
	"uu/internal/harden"
	"uu/internal/lang"
	"uu/internal/transform"
)

func optimized(t *testing.T, opts Options) (string, *Stats) {
	t.Helper()
	f, err := lang.CompileKernel(bsearchSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	stats, err := Optimize(f, opts)
	if err != nil {
		t.Fatalf("optimize %s: %v", opts.Config, err)
	}
	return f.String(), stats
}

func TestContainmentRecoversInjectedPanic(t *testing.T) {
	clean, _ := optimized(t, Options{Config: UU, LoopID: 0, Factor: 2, VerifyEachPass: true})
	got, stats := optimized(t, Options{
		Config: UU, LoopID: 0, Factor: 2, VerifyEachPass: true, Contain: true,
		Inject: []analysis.Pass{transform.ChaosPass(transform.ChaosPanic)},
	})
	if len(stats.Failures) != 1 {
		t.Fatalf("want 1 contained failure, got %+v", stats.Failures)
	}
	pf := stats.Failures[0]
	if pf.Kind != harden.FailurePanic || pf.Pass != "chaos-panic" {
		t.Fatalf("unexpected failure record: %+v", pf)
	}
	if got != clean {
		t.Fatalf("contained panic changed the compilation result:\n--- clean\n%s\n--- contained\n%s", clean, got)
	}
}

func TestContainmentRollsBackVerifierRejection(t *testing.T) {
	clean, _ := optimized(t, Options{Config: Baseline, VerifyEachPass: true})
	got, stats := optimized(t, Options{
		Config: Baseline, VerifyEachPass: true, Contain: true,
		Inject: []analysis.Pass{transform.ChaosPass(transform.ChaosCorrupt)},
	})
	if len(stats.Failures) != 1 || stats.Failures[0].Kind != harden.FailureVerify {
		t.Fatalf("want 1 verify failure, got %+v", stats.Failures)
	}
	if got != clean {
		t.Fatalf("contained corruption changed the compilation result")
	}
	if stats.Failures[0].IR == "" {
		t.Fatalf("failure record carries no reproducer IR")
	}
}

func TestVerifyRejectionWithoutContainmentErrors(t *testing.T) {
	f, err := lang.CompileKernel(bsearchSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	_, err = Optimize(f, Options{
		Config: Baseline, VerifyEachPass: true,
		Inject: []analysis.Pass{transform.ChaosPass(transform.ChaosCorrupt)},
	})
	if err == nil {
		t.Fatalf("uncontained verifier rejection must surface as an error")
	}
}

func TestContainmentHealthyPathByteIdentical(t *testing.T) {
	for _, cfg := range Configs {
		opts := Options{Config: cfg, LoopID: 0, Factor: 2, VerifyEachPass: true}
		clean, cleanStats := optimized(t, opts)
		opts.Contain = true
		contained, stats := optimized(t, opts)
		if len(stats.Failures) != 0 {
			t.Fatalf("%s: healthy run recorded failures: %+v", cfg, stats.Failures)
		}
		if contained != clean {
			t.Fatalf("%s: containment changed healthy output", cfg)
		}
		if len(stats.PassTimes) != len(cleanStats.PassTimes) {
			t.Fatalf("%s: containment changed the pass schedule: %d vs %d entries",
				cfg, len(stats.PassTimes), len(cleanStats.PassTimes))
		}
	}
}

func TestMiscompileInjectionEvadesVerifier(t *testing.T) {
	// The chaos miscompile is verifier-clean by design: containment with
	// verify-each must NOT catch it. This pins down why the differential
	// oracle exists (harden/fuzz catches it; see that package's tests).
	clean, _ := optimized(t, Options{Config: Baseline, VerifyEachPass: true})
	got, stats := optimized(t, Options{
		Config: Baseline, VerifyEachPass: true, Contain: true,
		Inject: []analysis.Pass{transform.ChaosPass(transform.ChaosMiscompile)},
	})
	if len(stats.Failures) != 0 {
		t.Fatalf("verifier unexpectedly caught the miscompile: %+v", stats.Failures)
	}
	if got == clean {
		t.Fatalf("miscompile injection had no effect on the output")
	}
}

func nonVerifyPasses(st *Stats) []string {
	var names []string
	for _, pt := range st.PassTimes {
		if pt.Name != "verify" {
			names = append(names, pt.Name)
		}
	}
	return names
}

func TestStopAfterTruncatesPipeline(t *testing.T) {
	_, full := optimized(t, Options{Config: UU, LoopID: 0, Factor: 2})
	total := len(nonVerifyPasses(full))
	if total < 6 {
		t.Fatalf("pipeline unexpectedly short: %d invocations", total)
	}
	for _, k := range []int{1, 3, total} {
		_, st := optimized(t, Options{Config: UU, LoopID: 0, Factor: 2, StopAfter: k})
		got := nonVerifyPasses(st)
		if len(got) != k {
			t.Fatalf("StopAfter=%d ran %d invocations (%v)", k, len(got), got)
		}
		want := nonVerifyPasses(full)[:k]
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("StopAfter=%d invocation %d: got %s, want %s", k, i, got[i], want[i])
			}
		}
	}
	// A limit beyond the pipeline's length is a no-op.
	_, st := optimized(t, Options{Config: UU, LoopID: 0, Factor: 2, StopAfter: total + 100})
	if len(nonVerifyPasses(st)) != total {
		t.Fatalf("oversized StopAfter changed the pipeline")
	}
}
