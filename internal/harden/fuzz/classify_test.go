package fuzz

import (
	"errors"
	"fmt"
	"testing"

	"uu/internal/gpusim"
	"uu/internal/interp"
)

// TestDivergenceInfraClassification pins the infra-vs-mismatch triage the
// campaign exit codes depend on: only budget and decode sentinels classify
// as infrastructure, and only when the error value (not its text) carries
// them.
func TestDivergenceInfraClassification(t *testing.T) {
	cases := []struct {
		name string
		d    Divergence
		want bool
	}{
		{"output-mismatch", Divergence{Detail: "fout[3]: want 1, got 2"}, false},
		{"cycle-budget", Divergence{Err: fmt.Errorf("gpusim: k after 99 steps: %w", gpusim.ErrCycleBudget)}, true},
		{"decode", Divergence{Err: fmt.Errorf("%w: bad float op", gpusim.ErrDecode)}, true},
		{"step-budget", Divergence{Err: fmt.Errorf("thread 4: interp: %w in k", interp.ErrStepBudget)}, true},
		{"other-error", Divergence{Err: errors.New("ir: verifier rejected function")}, false},
		// Matching on rendered text instead of the wrapped value would
		// misclassify this one.
		{"text-lookalike", Divergence{Err: errors.New("step budget exhausted")}, false},
	}
	for _, tc := range cases {
		if got := tc.d.Infra(); got != tc.want {
			t.Errorf("%s: Infra() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestPartitionSplitsFindings(t *testing.T) {
	res := &CampaignResult{Findings: []Finding{
		{Div: Divergence{Detail: "fout[0]: want 1, got 2"}},
		{Div: Divergence{Err: fmt.Errorf("gpusim: %w", gpusim.ErrCycleBudget)}},
		{Div: Divergence{Err: fmt.Errorf("decode: %w", gpusim.ErrDecode)}},
	}}
	mismatches, infra := res.Partition()
	if mismatches != 1 || infra != 2 {
		t.Fatalf("Partition() = (%d, %d), want (1, 2)", mismatches, infra)
	}
}

// TestInterpStepBudgetIsMatchable guards the sentinel the oracle's
// classification relies on: RunSteps must wrap interp.ErrStepBudget, not
// just render its text.
func TestInterpStepBudgetIsMatchable(t *testing.T) {
	d := Divergence{Err: fmt.Errorf("interp: %w in f", interp.ErrStepBudget)}
	if !errors.Is(d.Err, interp.ErrStepBudget) || !d.Infra() {
		t.Fatalf("interp.ErrStepBudget did not survive wrapping: %v", d.Err)
	}
}
