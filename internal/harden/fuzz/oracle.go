// Package fuzz closes the gap the verifier cannot: a pass that produces
// well-formed but wrong IR. It runs generated kernels (internal/harden's
// Generate) through a differential matrix — the sequential interpreter on
// the unoptimized IR as the reference, then the interpreter on the
// optimized IR and the SIMT simulator at one and several workers — and
// reports any output disagreement as a miscompile. Findings shrink through
// an llvm-reduce-style reducer (reduce.go) into small reproducers.
package fuzz

import (
	"errors"
	"fmt"
	"math"

	"uu/internal/codegen"
	"uu/internal/gpusim"
	"uu/internal/harden"
	"uu/internal/interp"
	"uu/internal/ir"
	"uu/internal/pipeline"
)

// Execution budgets. Generated kernels run a few hundred instructions per
// thread; a miscompile that turns a bounded loop into an unbounded one
// should fail fast, not hang the campaign.
const (
	interpStepBudget = int64(1) << 20 // per thread
	simStepBudget    = int64(1) << 22 // per warp (32 threads in lockstep)
)

// Divergence describes one differential failure: a leg of the execution
// matrix that disagreed with the unoptimized-interpreter reference, or
// errored where the reference did not.
type Divergence struct {
	Seed   int64
	Config pipeline.Config
	// Stage identifies the leg: "optimize", "codegen", "interp-opt",
	// "gpusim-w1", "gpusim-w4" (IPDOM at one and several workers), the
	// cross-policy legs "gpusim-minsppc" and "gpusim-vortex", or the
	// cross-executor leg "gpusim-threaded" — every divergence backend and
	// execution backend must agree with the sequential reference, so a
	// policy-specific reconvergence bug or a threaded-compilation bug shows
	// up as a differential finding exactly like a miscompile.
	Stage string
	// Detail is the first mismatching element or the leg's error text.
	Detail string
	// Err is the leg's error value when the leg errored instead of
	// producing mismatching outputs; nil for genuine output divergences.
	// Keeping the value (not just its text) lets callers classify with
	// errors.Is — see Infra.
	Err error
}

// Infra reports whether the divergence is an infrastructure failure — a leg
// exhausting an execution budget or hitting a VPTX decode error — rather
// than a genuine differential mismatch. Budget exhaustion usually means the
// generated kernel is too slow for the campaign's budgets (or the budgets
// are mistuned); a decode error means codegen and the simulator disagree
// about the VPTX dialect. Both demand attention, but neither is evidence of
// a miscompile, so campaign drivers report them under a distinct exit code.
func (d *Divergence) Infra() bool {
	if d.Err == nil {
		return false
	}
	return errors.Is(d.Err, gpusim.ErrCycleBudget) ||
		errors.Is(d.Err, gpusim.ErrDecode) ||
		errors.Is(d.Err, interp.ErrStepBudget)
}

func (d *Divergence) String() string {
	return fmt.Sprintf("seed %d config %s: %s: %s", d.Seed, d.Config, d.Stage, d.Detail)
}

// newMemory builds the kernel's initial memory image: deterministic input
// buffers, zeroed outputs.
func newMemory(k *harden.Kernel) *interp.Memory {
	mem := interp.NewMemory(k.MemSize)
	for i, v := range k.F64Init {
		mem.SetF64(k.In0Base, int64(i), v)
	}
	for i, v := range k.I64Init {
		mem.SetI64(k.In1Base, int64(i), v)
	}
	return mem
}

func kernelArgs(k *harden.Kernel) []interp.Value {
	args := make([]interp.Value, len(k.Args))
	for i, a := range k.Args {
		args[i] = interp.IntVal(a)
	}
	return args
}

// runInterp executes f once per thread of the kernel's launch under the
// sequential interpreter and returns the final memory.
func runInterp(f *ir.Function, k *harden.Kernel) (*interp.Memory, error) {
	mem := newMemory(k)
	args := kernelArgs(k)
	total := k.Threads()
	for tid := 0; tid < total; tid++ {
		env := interp.Env{
			TID:    int32(tid % k.BlockDim),
			NTID:   int32(k.BlockDim),
			CTAID:  int32(tid / k.BlockDim),
			NCTAID: int32(k.GridDim),
		}
		if _, err := interp.RunSteps(f, args, mem, env, interpStepBudget, nil); err != nil {
			return nil, fmt.Errorf("thread %d: %w", tid, err)
		}
	}
	return mem, nil
}

// runSim executes the lowered program under the SIMT simulator with the
// given device configuration and worker count and a small step budget.
func runSim(prog *codegen.Program, k *harden.Kernel, cfg gpusim.DeviceConfig, workers int) (*interp.Memory, error) {
	mem := newMemory(k)
	cfg.MaxWarpSteps = simStepBudget
	launch := gpusim.Launch{GridDim: k.GridDim, BlockDim: k.BlockDim}
	if _, err := gpusim.RunWorkers(prog, kernelArgs(k), mem, launch, cfg, workers); err != nil {
		return nil, err
	}
	return mem, nil
}

// simLeg is one simulator leg of the differential matrix.
type simLeg struct {
	stage   string
	cfg     gpusim.DeviceConfig
	workers int
}

// defaultSimLegs is the simulator side of the differential matrix: the
// IPDOM device at one and several warp-scheduling workers, one leg per
// alternative divergence policy, then the threaded execution backend.
// Vortex runs with its native 16-wide warps, so this also exercises the
// narrow-warp masking paths.
func defaultSimLegs() []simLeg {
	threaded := gpusim.V100()
	threaded.Exec = gpusim.ExecThreaded
	return []simLeg{
		{"gpusim-w1", gpusim.V100(), 1},
		{"gpusim-w4", gpusim.V100(), 4},
		{"gpusim-minsppc", gpusim.MinSPPC(), 1},
		{"gpusim-vortex", gpusim.Vortex(), 1},
		{"gpusim-threaded", threaded, 1},
	}
}

// diffOutputs compares the kernel's two output regions and returns a
// description of the first mismatch, or "" if they agree. Floats compare
// with the same relative tolerance the benchmark harness uses (identities
// like x+0 => x may flip signed zeros); integers compare exactly.
func diffOutputs(k *harden.Kernel, want, got *interp.Memory) string {
	const relTol = 1e-9
	feq := func(a, b float64) bool {
		if a == b || (math.IsNaN(a) && math.IsNaN(b)) {
			return true
		}
		d := math.Abs(a - b)
		return d <= relTol*math.Max(math.Abs(a), math.Abs(b))
	}
	for i := int64(0); i < int64(k.Threads()); i++ {
		if a, b := want.F64(k.FOutBase, i), got.F64(k.FOutBase, i); !feq(a, b) {
			return fmt.Sprintf("fout[%d]: want %v, got %v", i, a, b)
		}
		if a, b := want.I64(k.IOutBase, i), got.I64(k.IOutBase, i); a != b {
			return fmt.Sprintf("iout[%d]: want %d, got %d", i, a, b)
		}
	}
	return ""
}

// Check runs f through one pipeline configuration and the full differential
// matrix. f is not mutated: the pipeline runs on a clone. A nil Divergence
// means every leg agreed with the unoptimized-interpreter reference. The
// returned error reports infrastructure problems only (the reference itself
// failing), never findings.
func Check(f *ir.Function, k *harden.Kernel, opts pipeline.Options) (*Divergence, error) {
	d, _, err := check(f, k, opts, nil)
	return d, err
}

// check is Check, additionally exposing the pipeline stats of the optimized
// build so the reducer can bisect the pass list and the campaign can
// aggregate contained pass failures. A nil legs selects the full default
// cross-policy matrix; the campaign passes a pinned leg set when the user
// restricts it to one device.
func check(f *ir.Function, k *harden.Kernel, opts pipeline.Options, legs []simLeg) (*Divergence, *pipeline.Stats, error) {
	if legs == nil {
		legs = defaultSimLegs()
	}
	div := func(stage, detail string) *Divergence {
		return &Divergence{Seed: k.Seed, Config: opts.Config, Stage: stage, Detail: detail}
	}
	divErr := func(stage string, err error) *Divergence {
		return &Divergence{Seed: k.Seed, Config: opts.Config, Stage: stage, Detail: err.Error(), Err: err}
	}
	ref, err := runInterp(f, k)
	if err != nil {
		return nil, nil, fmt.Errorf("fuzz: reference execution of %s failed: %w", f.Name, err)
	}
	opt := ir.Clone(f)
	stats, err := pipeline.Optimize(opt, opts)
	if err != nil {
		return divErr("optimize", err), stats, nil
	}
	optMem, err := runInterp(opt, k)
	if err != nil {
		return divErr("interp-opt", err), stats, nil
	}
	if d := diffOutputs(k, ref, optMem); d != "" {
		return div("interp-opt", d), stats, nil
	}
	prog, err := codegen.Lower(opt)
	if err != nil {
		return divErr("codegen", err), stats, nil
	}
	for _, leg := range legs {
		simMem, err := runSim(prog, k, leg.cfg, leg.workers)
		if err != nil {
			return divErr(leg.stage, err), stats, nil
		}
		if d := diffOutputs(k, ref, simMem); d != "" {
			return div(leg.stage, d), stats, nil
		}
	}
	return nil, stats, nil
}
