package fuzz

import (
	"fmt"

	"uu/internal/harden"
	"uu/internal/ir"
	"uu/internal/pipeline"
	"uu/internal/transform"
)

// Reduction is a minimized reproducer: the smallest kernel (and shortest
// pipeline prefix) the reducer could find that still diverges.
type Reduction struct {
	F    *ir.Function     // minimized kernel, verifier-clean and still failing
	Opts pipeline.Options // input options, StopAfter set to the minimal prefix when bisection succeeded
	Div  *Divergence      // the divergence the minimized reproducer exhibits
	// Removed counts the reduction attempts that stuck (folded branches and
	// deleted instructions).
	Removed int
}

// maxReduceRounds bounds the greedy fixpoint iteration; each round is a
// full sweep over branches and instructions, so a handful always suffices
// for generator-sized kernels.
const maxReduceRounds = 4

// Reduce shrinks a diverging kernel in llvm-reduce style: first bisect the
// pass list (find the shortest pipeline prefix that still reproduces, via
// Options.StopAfter), then repeatedly try folding conditional branches and
// deleting instructions, keeping each mutation only when the candidate
// stays verifier-clean and the divergence still reproduces. f is not
// mutated.
func Reduce(f *ir.Function, k *harden.Kernel, opts pipeline.Options) (*Reduction, error) {
	cur := ir.Clone(f)
	div, stats, err := check(cur, k, opts, nil)
	if err != nil {
		return nil, err
	}
	if div == nil {
		return nil, fmt.Errorf("fuzz: Reduce called on a kernel that does not diverge")
	}

	// Pass bisection. Skipped invocations leave no PassTimes entry, so the
	// stats of the failing run list exactly the invocations that ran; scan
	// for the shortest prefix that still fails. (The schedule is data
	// dependent, so divergence is not guaranteed monotone in the prefix
	// length — the scan takes the first failing prefix, which is what a
	// debugging session wants to look at anyway.)
	if opts.StopAfter == 0 && stats != nil {
		total := 0
		for _, pt := range stats.PassTimes {
			if pt.Name != "verify" {
				total++
			}
		}
		for stop := 1; stop < total; stop++ {
			o := opts
			o.StopAfter = stop
			if d, _, cerr := check(cur, k, o, nil); cerr == nil && d != nil {
				opts.StopAfter = stop
				div = d
				break
			}
		}
	}

	// stillFails re-runs the full differential check on a candidate; a
	// mutation is kept only when the candidate is well-formed and the
	// failure survives.
	stillFails := func(cand *ir.Function) *Divergence {
		if ir.Verify(cand) != nil {
			return nil
		}
		d, _, cerr := check(cand, k, opts, nil)
		if cerr != nil {
			return nil
		}
		return d
	}

	red := &Reduction{}
	for round := 0; round < maxReduceRounds; round++ {
		progress := false

		// Fold each conditional branch to one of its targets, deleting
		// whatever becomes unreachable.
		for _, bn := range blockNames(cur) {
			for side := 0; side < 2; side++ {
				b := cur.BlockByName(bn)
				if b == nil || b.Term() == nil || b.Term().Op != ir.OpCondBr {
					break
				}
				succs := b.Succs()
				if side >= len(succs) || (side == 1 && succs[1] == succs[0]) {
					break
				}
				cand := ir.Clone(cur)
				cb := cand.BlockByName(bn)
				transform.FoldToUncond(cb, cb.Succs()[side])
				transform.RemoveUnreachable(cand)
				transform.CollapseSinglePredPhis(cand)
				if d := stillFails(cand); d != nil {
					cur, div = cand, d
					red.Removed++
					progress = true
				}
			}
		}

		// Delete instructions one at a time, replacing any uses of a
		// deleted value with a zero constant of its type. Walk in reverse
		// so users tend to disappear before their operands.
		for _, bn := range blockNames(cur) {
			b := cur.BlockByName(bn)
			if b == nil {
				continue
			}
			for idx := b.NumInstrs() - 1; idx >= 0; idx-- {
				cand := ir.Clone(cur)
				cb := cand.BlockByName(bn)
				if cb == nil || idx >= cb.NumInstrs() {
					continue
				}
				in := cb.Instrs()[idx]
				if !deleteInstr(cb, in) {
					continue
				}
				if d := stillFails(cand); d != nil {
					cur, div = cand, d
					red.Removed++
					progress = true
				}
			}
		}

		if !progress {
			break
		}
	}

	red.F = cur
	red.Opts = opts
	red.Div = div
	return red, nil
}

// blockNames snapshots the function's block names so reduction sweeps stay
// stable while cur is replaced by smaller candidates.
func blockNames(f *ir.Function) []string {
	names := make([]string, 0, len(f.Blocks()))
	for _, b := range f.Blocks() {
		names = append(names, b.Name)
	}
	return names
}

// deleteInstr removes in from b if the reducer knows how: terminators stay,
// void ops (stores, barriers) are erased outright, and value-producing ops
// have their uses replaced by a zero constant first. Reports whether the
// candidate was mutated.
func deleteInstr(b *ir.Block, in *ir.Instr) bool {
	if in.IsTerminator() {
		return false
	}
	if in.HasUses() {
		t := in.Type()
		switch {
		case t.IsFloat():
			in.ReplaceAllUsesWith(ir.ConstFloat(t, 0))
		case t.IsInt():
			in.ReplaceAllUsesWith(ir.ConstInt(t, 0))
		default:
			return false // pointers and friends: no sensible stand-in
		}
	}
	b.Erase(in)
	return true
}
