package fuzz

import (
	"testing"

	"uu/internal/analysis"
	"uu/internal/harden"
	"uu/internal/ir"
	"uu/internal/pipeline"
	"uu/internal/transform"
)

func TestReduceShrinksMiscompile(t *testing.T) {
	seed := findMiscompileSeed(t)
	k := harden.Generate(seed)
	opts := pipeline.Options{
		Config: pipeline.Baseline, VerifyEachPass: true, Contain: true,
		Inject: []analysis.Pass{transform.ChaosPass(transform.ChaosMiscompile)},
	}
	before := k.F.String()
	red, err := Reduce(k.F, k, opts)
	if err != nil {
		t.Fatalf("reduce: %v", err)
	}
	if k.F.String() != before {
		t.Fatalf("Reduce mutated its input")
	}
	if err := ir.Verify(red.F); err != nil {
		t.Fatalf("reduced kernel is not verifier-clean: %v", err)
	}
	if red.F.NumInstrs() > k.F.NumInstrs() {
		t.Fatalf("reduction grew the kernel: %d -> %d instrs", k.F.NumInstrs(), red.F.NumInstrs())
	}
	if red.Removed == 0 {
		t.Fatalf("reduction made no progress on a generator-sized kernel")
	}
	if red.Opts.StopAfter == 0 {
		t.Fatalf("pass bisection found no failing prefix")
	}
	// The minimized reproducer must still fail, under the minimized options.
	div, err := Check(red.F, k, red.Opts)
	if err != nil {
		t.Fatalf("recheck: %v", err)
	}
	if div == nil {
		t.Fatalf("reduced kernel no longer diverges")
	}
	if red.Div == nil || red.Div.Detail == "" {
		t.Fatalf("reduction lost the divergence record")
	}
}

func TestReduceRejectsHealthyKernel(t *testing.T) {
	k := harden.Generate(7)
	opts := pipeline.Options{Config: pipeline.Baseline, VerifyEachPass: true, Contain: true}
	if _, err := Reduce(k.F, k, opts); err == nil {
		t.Fatalf("Reduce accepted a kernel that does not diverge")
	}
}
