package fuzz

import (
	"testing"

	"uu/internal/harden"
	"uu/internal/ir"
	"uu/internal/pipeline"
)

// FuzzPipelineDifferential is the native-fuzzing entry point: every input
// becomes a generator seed, and the kernel it determines runs through the
// full differential matrix under every pipeline configuration with
// containment and verify-each enabled. Any contained pass failure or output
// divergence fails the run. Seeds that merely make the pipeline refuse
// (e.g. an un-unrollable loop) are fine — refusal is an error return, not
// a miscompile.
func FuzzPipelineDifferential(f *testing.F) {
	for _, s := range []int64{1, 17, 42, 101, 1 << 40} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		k := harden.Generate(seed)
		loops := pipeline.CanonicalLoopCount(ir.Clone(k.F))
		for _, cfg := range pipeline.Configs {
			opts := pipeline.Options{Config: cfg, VerifyEachPass: true, Contain: true}
			switch cfg {
			case pipeline.UnrollOnly, pipeline.UnmergeOnly, pipeline.UU:
				if loops == 0 {
					continue
				}
				opts.LoopID = int(((seed % int64(loops)) + int64(loops)) % int64(loops))
				opts.Factor = 2
			}
			div, stats, err := check(k.F, k, opts, nil)
			if err != nil {
				t.Fatalf("seed %d config %s: %v", seed, cfg, err)
			}
			if stats != nil && len(stats.Failures) > 0 {
				t.Fatalf("seed %d config %s: contained pass failure: %v", seed, cfg, stats.Failures[0].String())
			}
			if div != nil && div.Stage != "optimize" {
				t.Fatalf("miscompile: %s", div.String())
			}
		}
	})
}
