package fuzz

import (
	"bytes"
	"reflect"
	"testing"

	"uu/internal/codegen"
	"uu/internal/gpusim"
	"uu/internal/harden"
	"uu/internal/ir"
	"uu/internal/pipeline"
)

// diffKernels is how many generated kernels the executor-differential test
// sweeps. Odd seeds run the full heuristic pipeline so the threaded core
// sees unrolled/unmerged control flow, not just generator shapes.
const diffKernels = 200

// TestExecutorDifferentialFuzz pins the switch and threaded execution
// backends byte-identical — metrics, per-PC profiles, and final memory —
// over generated kernels on every divergence policy. Unlike the oracle
// (which compares simulators against the interpreter with a float
// tolerance), this is an exact executor-vs-executor comparison: the two
// backends run the same machine model and must not differ in a single bit.
func TestExecutorDifferentialFuzz(t *testing.T) {
	devs := []struct {
		name string
		cfg  gpusim.DeviceConfig
	}{
		{"ipdom", gpusim.V100()},
		{"minsppc", gpusim.MinSPPC()},
		{"vortex", gpusim.Vortex()},
	}
	for seed := int64(1); seed <= diffKernels; seed++ {
		k := harden.Generate(seed)
		opts := pipeline.Options{Config: pipeline.Baseline}
		if seed%2 == 1 {
			opts = pipeline.Options{Config: pipeline.UUHeuristic}
		}
		f := ir.Clone(k.F)
		if _, err := pipeline.Optimize(f, opts); err != nil {
			t.Fatalf("seed %d: optimize: %v", seed, err)
		}
		prog, err := codegen.Lower(f)
		if err != nil {
			t.Fatalf("seed %d: codegen: %v", seed, err)
		}
		for _, dv := range devs {
			run := func(exec gpusim.ExecKind) (*gpusim.Metrics, *gpusim.Profile, []byte, error) {
				mem := newMemory(k)
				cfg := dv.cfg
				cfg.Exec = exec
				cfg.MaxWarpSteps = simStepBudget
				// Alternate profiled and unprofiled runs: profiling pins
				// the per-PC counters, while a nil profile steers the
				// threaded core down its steady-state fast loop, so both
				// block paths get differential coverage.
				var prof *gpusim.Profile
				if seed%2 == 1 {
					prof = gpusim.NewProfile(prog)
				}
				launch := gpusim.Launch{GridDim: k.GridDim, BlockDim: k.BlockDim}
				m, err := gpusim.RunWorkersProfiled(prog, kernelArgs(k), mem, launch, cfg, 1, nil, 0, prof)
				return m, prof, mem.Data, err
			}
			ms, ps, memS, errS := run(gpusim.ExecSwitch)
			mt, pt, memT, errT := run(gpusim.ExecThreaded)
			if (errS == nil) != (errT == nil) {
				t.Fatalf("seed %d %s (%s): error mismatch: switch=%v threaded=%v", seed, dv.name, opts.Config, errS, errT)
			}
			if errS != nil {
				if errS.Error() != errT.Error() {
					t.Errorf("seed %d %s (%s): error text differs:\nswitch:   %v\nthreaded: %v", seed, dv.name, opts.Config, errS, errT)
				}
				continue
			}
			if !reflect.DeepEqual(ms, mt) {
				t.Errorf("seed %d %s (%s): metrics differ:\nswitch:   %+v\nthreaded: %+v", seed, dv.name, opts.Config, ms, mt)
			}
			if !reflect.DeepEqual(ps, pt) {
				t.Errorf("seed %d %s (%s): profiles differ", seed, dv.name, opts.Config)
			}
			if !bytes.Equal(memS, memT) {
				i := 0
				for i < len(memS) && memS[i] == memT[i] {
					i++
				}
				t.Errorf("seed %d %s (%s): memory differs at byte %d: switch=%#x threaded=%#x", seed, dv.name, opts.Config, i, memS[i], memT[i])
			}
		}
	}
}
