package fuzz

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"uu/internal/analysis"
	"uu/internal/gpusim"
	"uu/internal/harden"
	"uu/internal/ir"
	"uu/internal/pipeline"
)

// CampaignOptions configures a differential fuzzing run.
type CampaignOptions struct {
	// Count is the number of kernels to generate; seeds run from Seed to
	// Seed+Count-1.
	Count int
	Seed  int64
	// Configs lists the pipeline configurations to exercise; nil means all
	// of pipeline.Configs. Per-loop configurations are skipped for kernels
	// without loops.
	Configs []pipeline.Config
	// VerifyEach runs the IR verifier after every pass (contained).
	VerifyEach bool
	// Inject adds extra passes to every pipeline run — the hook the
	// end-to-end tests use to plant a known miscompile.
	Inject []analysis.Pass
	// Device, when non-empty, pins the simulator legs of the differential
	// matrix to this gpusim device spec (see gpusim.ParseDevice) at 1 and
	// 4 workers, instead of the default cross-policy matrix covering all
	// three divergence backends.
	Device string
	// Reduce shrinks every finding into a minimized reproducer.
	Reduce bool
	// ReproDir, when set together with Reduce, receives one .ir file per
	// minimized finding.
	ReproDir string
	// Log, when non-nil, receives one progress line per finding.
	Log io.Writer
}

// Finding is one confirmed divergence, optionally minimized.
type Finding struct {
	Div       Divergence
	IR        string // the diverging kernel as generated
	ReducedIR string // minimized reproducer ("" when reduction was off or failed)
	StopAfter int    // minimal pipeline prefix that reproduces (0 = full pipeline)
	ReproPath string // file the reproducer was written to ("" when not written)
}

// CampaignResult aggregates a campaign.
type CampaignResult struct {
	Kernels  int
	Checks   int
	Findings []Finding
	// Refusals counts pipeline runs that returned a clean error (e.g. the
	// selected loop was not unrollable). A refusal is correct robust
	// behavior, not a finding, but the count is reported for visibility.
	Refusals int
	// Failures lists pass invocations the guard contained (panics, and
	// verifier rejections under VerifyEach) across all runs.
	Failures []harden.PassFailure
}

// Partition splits the findings into genuine differential mismatches and
// infrastructure failures (budget exhaustion, decode errors — see
// Divergence.Infra). Campaign drivers map the two classes to distinct exit
// codes so CI can triage a red fuzz job without parsing logs.
func (r *CampaignResult) Partition() (mismatches, infra int) {
	for _, f := range r.Findings {
		if f.Div.Infra() {
			infra++
		} else {
			mismatches++
		}
	}
	return mismatches, infra
}

// RunCampaign generates Count kernels and runs each through the
// differential matrix for every applicable configuration. The returned
// error reports infrastructure problems only; miscompiles land in
// Findings.
func RunCampaign(o CampaignOptions) (*CampaignResult, error) {
	cfgs := o.Configs
	if len(cfgs) == 0 {
		cfgs = pipeline.Configs
	}
	var legs []simLeg
	if o.Device != "" {
		dev, _, err := gpusim.ParseDevice(o.Device)
		if err != nil {
			return nil, err
		}
		legs = []simLeg{
			{"gpusim-w1", dev, 1},
			{"gpusim-w4", dev, 4},
		}
	}
	res := &CampaignResult{}
	for i := 0; i < o.Count; i++ {
		seed := o.Seed + int64(i)
		k := harden.Generate(seed)
		res.Kernels++
		// Loop ids are assigned on the canonicalized form; count them there
		// (CanonicalLoopCount mutates, so feed it a clone).
		loops := pipeline.CanonicalLoopCount(ir.Clone(k.F))
		for _, cfg := range cfgs {
			opts := pipeline.Options{
				Config:         cfg,
				VerifyEachPass: o.VerifyEach,
				Contain:        true,
				Inject:         o.Inject,
			}
			switch cfg {
			case pipeline.UnrollOnly, pipeline.UnmergeOnly, pipeline.UU:
				if loops == 0 {
					continue
				}
				opts.LoopID = int(seed % int64(loops))
				opts.Factor = 2 + 2*(i%2) // alternate factors 2 and 4
			}
			div, stats, err := check(k.F, k, opts, legs)
			if err != nil {
				return nil, err
			}
			res.Checks++
			if stats != nil {
				res.Failures = append(res.Failures, stats.Failures...)
			}
			if div == nil {
				continue
			}
			if div.Stage == "optimize" {
				res.Refusals++
				continue
			}
			f := Finding{Div: *div, IR: k.F.String()}
			if o.Reduce {
				if red, rerr := Reduce(k.F, k, opts); rerr == nil && red != nil {
					f.ReducedIR = red.F.String()
					f.StopAfter = red.Opts.StopAfter
					f.Div = *red.Div
					if o.ReproDir != "" {
						if path, werr := writeRepro(o.ReproDir, &f, opts); werr == nil {
							f.ReproPath = path
						}
					}
				}
			}
			if o.Log != nil {
				fmt.Fprintf(o.Log, "FAIL %s\n", f.Div.String())
			}
			res.Findings = append(res.Findings, f)
		}
	}
	return res, nil
}

// writeRepro persists a minimized reproducer with a header that records
// everything needed to replay it. The write rides the shared jittered
// backoff (harden.Backoff): campaign repro directories commonly live on
// network volumes in CI, where a transient write failure would otherwise
// drop a minimized finding on the floor.
func writeRepro(dir string, f *Finding, opts pipeline.Options) (string, error) {
	path := filepath.Join(dir, fmt.Sprintf("fuzz%d-%s.ir", f.Div.Seed, f.Div.Config))
	body := fmt.Sprintf(
		"; differential fuzz reproducer\n; seed %d, config %s, loop %d, factor %d\n; stage %s: %s\n; stop-after %d (0 = full pipeline)\n%s",
		f.Div.Seed, f.Div.Config, opts.LoopID, opts.Factor, f.Div.Stage, f.Div.Detail, f.StopAfter, f.ReducedIR)
	err := harden.DefaultBackoff().Retry(context.Background(), nil, func() error {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		return os.WriteFile(path, []byte(body), 0o644)
	})
	if err != nil {
		return "", err
	}
	return path, nil
}
