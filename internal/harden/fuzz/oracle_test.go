package fuzz

import (
	"strings"
	"testing"

	"uu/internal/analysis"
	"uu/internal/harden"
	"uu/internal/pipeline"
	"uu/internal/transform"
)

// TestOracleCleanOnHealthyPipeline is the core soundness check: the real
// pipeline must never diverge from the unoptimized reference on generated
// kernels, across every configuration.
func TestOracleCleanOnHealthyPipeline(t *testing.T) {
	res, err := RunCampaign(CampaignOptions{Count: 30, Seed: 1, VerifyEach: true})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if len(res.Findings) != 0 {
		t.Fatalf("healthy pipeline diverged: %v", res.Findings[0].Div.String())
	}
	if len(res.Failures) != 0 {
		t.Fatalf("healthy pipeline had contained failures: %v", res.Failures)
	}
	if res.Checks == 0 || res.Kernels != 30 {
		t.Fatalf("campaign did no work: %+v", res)
	}
}

// miscompileSeed is a seed whose generated kernel visibly changes output
// when the chaos pass flips a branch condition (found by scanning; pinned
// so the test is deterministic).
func findMiscompileSeed(t *testing.T) int64 {
	t.Helper()
	for seed := int64(1); seed < 60; seed++ {
		k := harden.Generate(seed)
		opts := pipeline.Options{
			Config: pipeline.Baseline, VerifyEachPass: true, Contain: true,
			Inject: []analysis.Pass{transform.ChaosPass(transform.ChaosMiscompile)},
		}
		div, err := Check(k.F, k, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if div != nil && div.Stage != "optimize" {
			return seed
		}
	}
	t.Fatalf("no seed in [1,60) exposes the injected miscompile")
	return 0
}

// TestOracleCatchesMiscompile proves the differential matrix detects a
// verifier-clean wrong transform — the failure mode the verifier (and so
// containment) cannot see, pinned from the other side by the pipeline's
// TestMiscompileInjectionEvadesVerifier.
func TestOracleCatchesMiscompile(t *testing.T) {
	seed := findMiscompileSeed(t)
	k := harden.Generate(seed)
	opts := pipeline.Options{
		Config: pipeline.Baseline, VerifyEachPass: true, Contain: true,
		Inject: []analysis.Pass{transform.ChaosPass(transform.ChaosMiscompile)},
	}
	div, err := Check(k.F, k, opts)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if div == nil {
		t.Fatalf("oracle missed the injected miscompile on seed %d", seed)
	}
	if div.Seed != seed || div.Config != pipeline.Baseline || div.Detail == "" {
		t.Fatalf("divergence record incomplete: %+v", div)
	}
	// Without the injection the same kernel must be clean.
	opts.Inject = nil
	div, err = Check(k.F, k, opts)
	if err != nil {
		t.Fatalf("clean check: %v", err)
	}
	if div != nil {
		t.Fatalf("kernel diverges without injection: %v", div.String())
	}
}

// TestCampaignSurfacesInjectedMiscompile runs the whole campaign path —
// generation, matrix, reduction, reproducer writing — against an injected
// miscompile and checks a finding comes out the other end.
func TestCampaignSurfacesInjectedMiscompile(t *testing.T) {
	seed := findMiscompileSeed(t)
	dir := t.TempDir()
	res, err := RunCampaign(CampaignOptions{
		Count: 1, Seed: seed, Configs: []pipeline.Config{pipeline.Baseline},
		VerifyEach: true, Reduce: true, ReproDir: dir,
		Inject: []analysis.Pass{transform.ChaosPass(transform.ChaosMiscompile)},
	})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if len(res.Findings) != 1 {
		t.Fatalf("want 1 finding, got %d", len(res.Findings))
	}
	f := res.Findings[0]
	if f.ReducedIR == "" || f.ReproPath == "" {
		t.Fatalf("finding was not reduced/persisted: %+v", f.Div)
	}
	if !strings.Contains(f.ReproPath, dir) {
		t.Fatalf("reproducer written outside ReproDir: %s", f.ReproPath)
	}
}

// TestCampaignAggregatesContainedFailures: a panicking pass must not abort
// the campaign — it is contained per run and aggregated in the result.
func TestCampaignAggregatesContainedFailures(t *testing.T) {
	res, err := RunCampaign(CampaignOptions{
		Count: 2, Seed: 1, Configs: []pipeline.Config{pipeline.Baseline},
		VerifyEach: true,
		Inject:     []analysis.Pass{transform.ChaosPass(transform.ChaosPanic)},
	})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if len(res.Failures) != res.Checks || res.Checks != 2 {
		t.Fatalf("want one contained failure per check (%d), got %d", res.Checks, len(res.Failures))
	}
	for _, pf := range res.Failures {
		if pf.Kind != harden.FailurePanic || pf.Pass != "chaos-panic" {
			t.Fatalf("unexpected failure record: %+v", pf)
		}
	}
	// The chaos panic fires before it mutates anything harmful; rolled-back
	// compilation must still be correct, so no findings.
	if len(res.Findings) != 0 {
		t.Fatalf("contained panic produced findings: %+v", res.Findings)
	}
}
