package harden

import (
	"context"
	"math/rand"
	"time"
)

// Backoff is a capped exponential backoff schedule with full jitter,
// shared by every retry loop in the repository (the uud load client's
// 429/disconnect handling, the fuzz campaign's reproducer writes). The
// zero value is not useful; start from DefaultBackoff.
type Backoff struct {
	// Base is the nominal delay before the first retry; attempt n waits
	// Base * Factor^n, capped at Max.
	Base time.Duration
	// Max caps the per-attempt delay after exponential growth.
	Max time.Duration
	// Factor is the exponential growth rate between attempts (>= 1).
	Factor float64
	// Attempts is the total number of tries (the first call plus
	// Attempts-1 retries). Zero or negative means one try, no retries.
	Attempts int
	// Jitter selects full jitter: each delay is drawn uniformly from
	// (0, d] instead of sleeping exactly d, decorrelating clients that
	// were shed by the same overload event.
	Jitter bool
	// Rand supplies the jitter randomness. Nil uses a time-seeded source;
	// tests and deterministic clients inject a seeded *rand.Rand.
	Rand *rand.Rand
	// Sleep replaces time.Sleep in tests. Nil sleeps for real (honoring
	// ctx cancellation).
	Sleep func(time.Duration)
}

// DefaultBackoff is the schedule the load client starts from: 5 tries,
// 50ms doubling to a 2s cap, full jitter.
func DefaultBackoff() Backoff {
	return Backoff{Base: 50 * time.Millisecond, Max: 2 * time.Second, Factor: 2, Attempts: 5, Jitter: true}
}

// Delay returns the (possibly jittered) delay before retry attempt n
// (0-based: the delay between the first failure and the second try is
// Delay(0)).
func (b Backoff) Delay(n int) time.Duration {
	d := float64(b.Base)
	for i := 0; i < n; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if b.Jitter && d > 0 {
		var u float64
		if b.Rand != nil {
			u = b.Rand.Float64()
		} else {
			u = rand.Float64()
		}
		// Full jitter over (0, d]: never a zero sleep (that would turn a
		// retry loop into a busy spin), never more than the schedule.
		d = d * (1 - u)
		if d < 1 {
			d = 1
		}
	}
	return time.Duration(d)
}

// Retry runs fn up to b.Attempts times, sleeping the schedule's delay
// between failures. It returns nil on the first success; after the last
// attempt (or when ctx is done first) it returns the most recent error.
// fn's error is inspected through retryable when non-nil: a false return
// stops immediately (the failure is permanent and backing off cannot
// help). A nil ctx is treated as context.Background().
func (b Backoff) Retry(ctx context.Context, retryable func(error) bool, fn func() error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	attempts := b.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for n := 0; n < attempts; n++ {
		if cerr := ctx.Err(); cerr != nil {
			if err != nil {
				return err
			}
			return cerr
		}
		if err = fn(); err == nil {
			return nil
		}
		if retryable != nil && !retryable(err) {
			return err
		}
		if n == attempts-1 {
			break
		}
		d := b.Delay(n)
		if b.Sleep != nil {
			b.Sleep(d)
			continue
		}
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return err
		case <-t.C:
		}
	}
	return err
}
