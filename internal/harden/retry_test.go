package harden

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// TestBackoffDelayDeterministic pins the jittered schedule for a fixed
// seed: the exact delays matter less than that they are reproducible,
// capped, exponential, and never zero.
func TestBackoffDelayDeterministic(t *testing.T) {
	mk := func() Backoff {
		b := DefaultBackoff()
		b.Rand = rand.New(rand.NewSource(42))
		return b
	}
	a, b := mk(), mk()
	for n := 0; n < 8; n++ {
		da, db := a.Delay(n), b.Delay(n)
		if da != db {
			t.Fatalf("attempt %d: same seed gave %v vs %v", n, da, db)
		}
		if da <= 0 {
			t.Fatalf("attempt %d: non-positive delay %v", n, da)
		}
		if da > a.Max {
			t.Fatalf("attempt %d: delay %v above cap %v", n, da, a.Max)
		}
	}
}

// TestBackoffDelayUnjittered checks the raw exponential-with-cap shape.
func TestBackoffDelayUnjittered(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 45 * time.Millisecond, Factor: 2, Attempts: 6}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		45 * time.Millisecond,
		45 * time.Millisecond,
	}
	for n, w := range want {
		if got := b.Delay(n); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", n, got, w)
		}
	}
}

func TestRetrySucceedsAfterFailures(t *testing.T) {
	b := Backoff{Base: time.Millisecond, Max: 8 * time.Millisecond, Factor: 2, Attempts: 5,
		Jitter: true, Rand: rand.New(rand.NewSource(7))}
	var slept []time.Duration
	b.Sleep = func(d time.Duration) { slept = append(slept, d) }
	calls := 0
	err := b.Retry(context.Background(), nil, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry = %v, want nil", err)
	}
	if calls != 3 {
		t.Fatalf("fn called %d times, want 3", calls)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2 (between the 3 attempts)", len(slept))
	}
	for i, d := range slept {
		if d <= 0 {
			t.Fatalf("sleep %d: non-positive %v", i, d)
		}
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	b := Backoff{Base: time.Millisecond, Max: time.Millisecond, Factor: 2, Attempts: 4}
	b.Sleep = func(time.Duration) {}
	calls := 0
	wantErr := errors.New("still down")
	err := b.Retry(context.Background(), nil, func() error { calls++; return wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("Retry = %v, want %v", err, wantErr)
	}
	if calls != 4 {
		t.Fatalf("fn called %d times, want 4", calls)
	}
}

func TestRetryPermanentErrorStops(t *testing.T) {
	b := DefaultBackoff()
	b.Sleep = func(time.Duration) {}
	permanent := errors.New("bad request")
	calls := 0
	err := b.Retry(context.Background(), func(err error) bool { return !errors.Is(err, permanent) },
		func() error { calls++; return permanent })
	if !errors.Is(err, permanent) {
		t.Fatalf("Retry = %v, want %v", err, permanent)
	}
	if calls != 1 {
		t.Fatalf("fn called %d times, want 1 (permanent error must not retry)", calls)
	}
}

func TestRetryCanceledContext(t *testing.T) {
	b := Backoff{Base: time.Hour, Max: time.Hour, Factor: 2, Attempts: 3}
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	go func() {
		// Cancel while Retry sleeps between attempts 1 and 2.
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	wantErr := errors.New("down")
	err := b.Retry(ctx, nil, func() error { calls++; return wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("Retry = %v, want the last attempt error %v", err, wantErr)
	}
	if calls != 1 {
		t.Fatalf("fn called %d times, want 1 (cancellation must stop the loop)", calls)
	}
}
