package harden

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uu/internal/analysis"
	"uu/internal/ir"
	"uu/internal/irparse"
)

const countLoopSrc = `
func @count(i64 %n) -> i64 {
entry:
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i2, %body ]
  %s = phi i64 [ 0, %entry ], [ %s2, %body ]
  %c = icmp slt i64 %i, i64 %n
  condbr i1 %c, %body, %exit
body:
  %s2 = add i64 %s, i64 %i
  %i2 = add i64 %i, i64 1
  br %head
exit:
  %r = phi i64 [ %s, %head ]
  ret i64 %r
}
`

type fakePass struct {
	name string
	run  func(f *ir.Function, am *analysis.AnalysisManager) analysis.PreservedAnalyses
}

func (p *fakePass) Name() string { return p.name }
func (p *fakePass) Run(f *ir.Function, am *analysis.AnalysisManager) analysis.PreservedAnalyses {
	return p.run(f, am)
}

func parseCountLoop(t *testing.T) *ir.Function {
	t.Helper()
	f, err := irparse.ParseFunc(countLoopSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func TestGuardContainsPanic(t *testing.T) {
	f := parseCountLoop(t)
	want := f.String()
	am := analysis.NewAnalysisManager(f)
	am.DomTree() // warm the cache so rollback invalidation is observable
	g := &Guard{}
	crash := &fakePass{name: "crash", run: func(f *ir.Function, am *analysis.AnalysisManager) analysis.PreservedAnalyses {
		// Half-destroy the IR, then die: the guard must both recover the
		// panic and undo the partial mutation.
		ex := f.BlockByName("exit")
		ex.Remove(ex.Term())
		panic("boom: deliberate test crash")
	}}
	pa, _, failed := g.RunPass(crash, f, am)
	if !failed {
		t.Fatalf("guard did not report the panic")
	}
	if pa.Changed() {
		t.Fatalf("rollback must report an unchanged function")
	}
	if got := f.String(); got != want {
		t.Fatalf("function not rolled back:\n--- want\n%s\n--- got\n%s", want, got)
	}
	if err := ir.Verify(f); err != nil {
		t.Fatalf("restored function fails verify: %v", err)
	}
	fails := g.Failures()
	if len(fails) != 1 {
		t.Fatalf("want 1 failure, got %d", len(fails))
	}
	pf := fails[0]
	if pf.Kind != FailurePanic || pf.Pass != "crash" || pf.Function != "count" {
		t.Fatalf("bad failure record: %+v", pf)
	}
	if !strings.Contains(pf.Err, "boom") {
		t.Fatalf("failure lost the panic value: %q", pf.Err)
	}
	if !strings.Contains(pf.Stack, "harden") {
		t.Fatalf("failure has no stack trace")
	}
	if pf.IR != want {
		t.Fatalf("failure does not carry the pre-pass IR")
	}
}

func TestGuardContainsVerifierRejection(t *testing.T) {
	f := parseCountLoop(t)
	want := f.String()
	am := analysis.NewAnalysisManager(f)
	g := &Guard{Verify: true, DumpDir: t.TempDir()}
	corrupt := &fakePass{name: "corrupt", run: func(f *ir.Function, am *analysis.AnalysisManager) analysis.PreservedAnalyses {
		// Detach the exit block's terminator: a structural violation the
		// verifier rejects but that does not panic on its own.
		ex := f.BlockByName("exit")
		ex.Remove(ex.Term())
		return analysis.PreserveNone()
	}}
	_, _, failed := g.RunPass(corrupt, f, am)
	if !failed {
		t.Fatalf("guard did not catch the verifier rejection")
	}
	if got := f.String(); got != want {
		t.Fatalf("function not rolled back after verify failure")
	}
	fails := g.Failures()
	if len(fails) != 1 || fails[0].Kind != FailureVerify {
		t.Fatalf("want one verify failure, got %+v", fails)
	}
	if fails[0].IRDump == "" {
		t.Fatalf("DumpDir was set but no dump path recorded")
	}
	data, err := os.ReadFile(fails[0].IRDump)
	if err != nil {
		t.Fatalf("reading dump: %v", err)
	}
	if string(data) != want {
		t.Fatalf("dump file does not hold the pre-pass IR")
	}
	if filepath.Dir(fails[0].IRDump) == "" {
		t.Fatalf("dump path not under DumpDir")
	}
}

func TestGuardPassesThroughHealthyRuns(t *testing.T) {
	f := parseCountLoop(t)
	am := analysis.NewAnalysisManager(f)
	g := &Guard{Verify: true}
	ok := &fakePass{name: "nop", run: func(f *ir.Function, am *analysis.AnalysisManager) analysis.PreservedAnalyses {
		return analysis.Unchanged()
	}}
	pa, vdur, failed := g.RunPass(ok, f, am)
	if failed {
		t.Fatalf("healthy pass reported as failed: %+v", g.Failures())
	}
	if pa.Changed() {
		t.Fatalf("unchanged declaration lost")
	}
	if vdur <= 0 {
		t.Fatalf("verify time not accounted")
	}
	if len(g.Failures()) != 0 {
		t.Fatalf("spurious failures: %+v", g.Failures())
	}
}

func TestGuardContinuesAfterFailure(t *testing.T) {
	// A failure must leave the function usable by subsequent passes — the
	// whole point of containment.
	f := parseCountLoop(t)
	am := analysis.NewAnalysisManager(f)
	g := &Guard{Verify: true}
	crash := &fakePass{name: "crash", run: func(f *ir.Function, am *analysis.AnalysisManager) analysis.PreservedAnalyses {
		panic("again")
	}}
	mutate := &fakePass{name: "mutate", run: func(f *ir.Function, am *analysis.AnalysisManager) analysis.PreservedAnalyses {
		// A real (well-formed) rewrite: renaming via fresh block insertion.
		nb := f.NewBlock("dead")
		ir.NewBuilder(nb).Ret(ir.ConstInt(ir.I64, 0))
		return analysis.PreserveNone()
	}}
	if _, _, failed := g.RunPass(crash, f, am); !failed {
		t.Fatalf("first pass should fail")
	}
	pa, _, failed := g.RunPass(mutate, f, am)
	if failed || !pa.Changed() {
		t.Fatalf("pass after a contained failure did not run normally")
	}
	if err := ir.Verify(f); err != nil {
		t.Fatalf("verify after post-failure pass: %v", err)
	}
	if len(g.Failures()) != 1 {
		t.Fatalf("want exactly the first failure recorded, got %d", len(g.Failures()))
	}
}
