package harden

import (
	"testing"

	"uu/internal/ir"
)

func TestGenerateVerifierClean(t *testing.T) {
	// Generate panics on its own verifier rejection; sweep a seed range to
	// shake out dominance or typing bugs in the generator itself.
	for seed := int64(0); seed < 200; seed++ {
		k := Generate(seed)
		if err := ir.Verify(k.F); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, k.F.String())
		}
		if k.Threads() != k.BlockDim*k.GridDim {
			t.Fatalf("seed %d: bad thread count", seed)
		}
		if k.MemSize < k.IOutBase+8*int64(k.Threads()) {
			t.Fatalf("seed %d: memory too small for outputs", seed)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(42), Generate(42)
	if a.F.String() != b.F.String() {
		t.Fatalf("same seed produced different IR")
	}
	if a.N != b.N || len(a.F64Init) != len(b.F64Init) {
		t.Fatalf("same seed produced different workload")
	}
	for i := range a.F64Init {
		if a.F64Init[i] != b.F64Init[i] || a.I64Init[i] != b.I64Init[i] {
			t.Fatalf("same seed produced different input data")
		}
	}
	if c := Generate(43); c.F.String() == a.F.String() {
		t.Fatalf("different seeds produced identical IR")
	}
}

func TestGenerateCoversInterestingShapes(t *testing.T) {
	// Across a seed sweep the generator must exercise the constructs the
	// fuzzer exists for: loops, diamonds (phis), barriers, loads, selects.
	counts := map[ir.Op]int{}
	multiBlock := 0
	for seed := int64(0); seed < 200; seed++ {
		k := Generate(seed)
		if len(k.F.Blocks()) > 1 {
			multiBlock++
		}
		for _, b := range k.F.Blocks() {
			for _, in := range b.Instrs() {
				counts[in.Op]++
			}
		}
	}
	for _, op := range []ir.Op{ir.OpPhi, ir.OpCondBr, ir.OpLoad, ir.OpStore,
		ir.OpSelect, ir.OpBarrier, ir.OpFAdd, ir.OpSDiv, ir.OpShl,
		ir.OpSIToFP, ir.OpFPToSI, ir.OpTrunc} {
		if counts[op] == 0 {
			t.Errorf("200 seeds never produced %s", op)
		}
	}
	if multiBlock < 100 {
		t.Errorf("only %d/200 kernels had control flow", multiBlock)
	}
}
