package harden

import (
	"fmt"
	"math/rand"

	"uu/internal/ir"
)

// BufElems is the element count of each read-only input buffer. A power of
// two, so generated indices stay in bounds under a single and-mask.
const BufElems = 64

// Generated launch geometry: 4 warps across 2 blocks — enough for real
// warp divergence and cross-block ids while keeping a 500-kernel fuzz
// campaign fast.
const (
	genBlockDim = 64
	genGridDim  = 2
)

// Kernel is one generated fuzz case: a verifier-clean function plus the
// memory layout, launch geometry, and deterministic input data needed to
// execute it. The function reads the two input buffers, mixes the values
// through random control flow, and writes only out[gid] slots (one f64 and
// one i64 per thread), so any execution order over threads — the
// sequential interpreter or the SIMT simulator — must produce identical
// memory. That property is what makes output divergence a miscompile
// rather than a scheduling artifact.
type Kernel struct {
	F    *ir.Function
	Seed int64

	BlockDim, GridDim int

	// Byte offsets of the buffers inside one flat memory.
	In0Base  int64 // f64[BufElems] input
	In1Base  int64 // i64[BufElems] input
	FOutBase int64 // f64[threads] output
	IOutBase int64 // i64[threads] output
	MemSize  int64

	// Args lists the kernel arguments in parameter order: the four buffer
	// bases then the scalar n.
	Args []int64
	N    int64

	// Deterministic input data for in0/in1, derived from Seed.
	F64Init []float64
	I64Init []int64
}

// Threads is the total thread count of the generated launch.
func (k *Kernel) Threads() int { return k.BlockDim * k.GridDim }

// pool tracks the values available at the current insertion point, one
// slice per type. Every value in a pool dominates the insertion point by
// construction: values born inside a diamond arm enter the outer pool only
// through merge phis, and values born inside a loop body only through
// header phis — so the generated IR is dominance-clean without ever
// running a verifier mid-build.
type pool struct {
	i32, i64, f64, i1 []ir.Value
}

func (p *pool) clone() *pool {
	return &pool{
		i32: append([]ir.Value(nil), p.i32...),
		i64: append([]ir.Value(nil), p.i64...),
		f64: append([]ir.Value(nil), p.f64...),
		i1:  append([]ir.Value(nil), p.i1...),
	}
}

type gen struct {
	rng    *rand.Rand
	f      *ir.Function
	b      *ir.Builder
	budget int

	in0, in1, fout, iout ir.Value // buffer pointer params
	n                    ir.Value // uniform scalar param
	gid64                ir.Value
	blkn                 int
	namen                int
}

// Generate builds the fuzz kernel for one seed. The same seed always
// yields byte-identical IR and input data. The result is guaranteed
// verifier-clean: Generate panics if its own output fails ir.Verify,
// since that is a generator bug, not a fuzz finding.
func Generate(seed int64) *Kernel {
	rng := rand.New(rand.NewSource(seed))
	threads := int64(genBlockDim * genGridDim)

	k := &Kernel{
		Seed:     seed,
		BlockDim: genBlockDim,
		GridDim:  genGridDim,
		In0Base:  0,
		In1Base:  8 * BufElems,
		FOutBase: 16 * BufElems,
		IOutBase: 16*BufElems + 8*threads,
		MemSize:  16*BufElems + 16*threads,
	}
	k.N = int64(1 + rng.Intn(15))
	k.Args = []int64{k.In0Base, k.In1Base, k.FOutBase, k.IOutBase, k.N}
	k.F64Init = make([]float64, BufElems)
	k.I64Init = make([]int64, BufElems)
	for i := range k.F64Init {
		k.F64Init[i] = (rng.Float64() - 0.5) * 64
	}
	for i := range k.I64Init {
		k.I64Init[i] = int64(rng.Intn(1<<16) - 1<<15)
	}

	f := ir.NewFunction(fmt.Sprintf("fuzz%d", seed), ir.Void)
	g := &gen{rng: rng, f: f, budget: 24 + rng.Intn(40)}
	g.in0 = f.AddParam("in0", ir.PointerTo(ir.F64), true)
	g.in1 = f.AddParam("in1", ir.PointerTo(ir.I64), true)
	g.fout = f.AddParam("fout", ir.PointerTo(ir.F64), true)
	g.iout = f.AddParam("iout", ir.PointerTo(ir.I64), true)
	g.n = f.AddParam("n", ir.I64, false)

	entry := f.NewBlock("entry")
	g.b = ir.NewBuilder(entry)
	tid := g.b.TID()
	ntid := g.b.NTID()
	cta := g.b.CTAID()
	gid32 := g.b.Add(g.b.Mul(cta, ntid), tid)
	g.gid64 = g.b.Conv(ir.OpSExt, gid32, ir.I64)

	p := &pool{
		i32: []ir.Value{gid32, tid, ir.ConstInt(ir.I32, 3)},
		i64: []ir.Value{g.gid64, g.n, ir.ConstInt(ir.I64, 5), ir.ConstInt(ir.I64, -7)},
		f64: []ir.Value{ir.ConstFloat(ir.F64, 0.5), ir.ConstFloat(ir.F64, -2.25)},
	}
	p.f64 = append(p.f64, g.loadF64(p))
	p.i64 = append(p.i64, g.loadI64(p))

	g.seq(p, 0, true)

	// Every thread ends by writing its own slots; the stores are the
	// observable result the differential oracle compares.
	g.b.Store(g.pickF64(p), g.b.GEP(g.fout, g.gid64))
	g.b.Store(g.pickI64(p), g.b.GEP(g.iout, g.gid64))
	g.b.Ret(nil)

	if err := ir.Verify(f); err != nil {
		panic(fmt.Sprintf("harden: generator emitted bad IR (seed %d): %v", seed, err))
	}
	k.F = f
	return k
}

func (g *gen) newBlock(prefix string) *ir.Block {
	g.blkn++
	return g.f.NewBlock(fmt.Sprintf("%s%d", prefix, g.blkn))
}

// uniq makes a function-unique value name. Instruction names are not
// deduplicated by the IR (frontends are expected to emit unique ones), and
// a kernel with several loops would otherwise carry several "%i" phis —
// well-defined in memory, ambiguous once printed or reparsed.
func (g *gen) uniq(prefix string) string {
	g.namen++
	return fmt.Sprintf("%s%d", prefix, g.namen)
}

func pick[T any](rng *rand.Rand, s []T) T { return s[rng.Intn(len(s))] }

func (g *gen) pickF64(p *pool) ir.Value { return pick(g.rng, p.f64) }
func (g *gen) pickI64(p *pool) ir.Value { return pick(g.rng, p.i64) }
func (g *gen) pickI32(p *pool) ir.Value { return pick(g.rng, p.i32) }

// loadF64 emits an in-bounds load from in0: the index is and-masked into
// [0, BufElems).
func (g *gen) loadF64(p *pool) ir.Value {
	idx := g.b.And(g.pickI64(p), ir.ConstInt(ir.I64, BufElems-1))
	return g.b.Load(g.b.GEP(g.in0, idx))
}

func (g *gen) loadI64(p *pool) ir.Value {
	idx := g.b.And(g.pickI64(p), ir.ConstInt(ir.I64, BufElems-1))
	return g.b.Load(g.b.GEP(g.in1, idx))
}

// takeBool returns an i1: an existing one, or a fresh comparison over the
// pool (and remembers it).
func (g *gen) takeBool(p *pool) ir.Value {
	if len(p.i1) > 0 && g.rng.Intn(2) == 0 {
		return pick(g.rng, p.i1)
	}
	var c ir.Value
	if g.rng.Intn(3) == 0 {
		preds := []ir.Pred{ir.OLT, ir.OLE, ir.OGT, ir.OGE, ir.OEQ, ir.ONE}
		c = g.b.FCmp(pick(g.rng, preds), g.pickF64(p), g.pickF64(p))
	} else {
		preds := []ir.Pred{ir.EQ, ir.NE, ir.SLT, ir.SLE, ir.SGT, ir.SGE, ir.ULT, ir.UGE}
		c = g.b.ICmp(pick(g.rng, preds), g.pickI64(p), g.pickI64(p))
	}
	p.i1 = append(p.i1, c)
	return c
}

// seq emits a statement sequence at the current insertion point, growing p
// with every value it defines there. uniform reports whether all threads
// of a block reach this point together (required for barriers).
func (g *gen) seq(p *pool, depth int, uniform bool) {
	steps := 2 + g.rng.Intn(5)
	for s := 0; s < steps && g.budget > 0; s++ {
		g.budget--
		switch c := g.rng.Intn(100); {
		case c < 52:
			g.arith(p)
		case c < 68 && depth < 3:
			g.diamond(p, depth)
		case c < 82 && depth < 2:
			g.loop(p, depth, uniform)
		case c < 92:
			g.store(p)
		case uniform:
			g.b.Barrier()
		default:
			g.arith(p)
		}
	}
}

// arith emits one scalar computation and adds the result to the pool.
func (g *gen) arith(p *pool) {
	switch g.rng.Intn(10) {
	case 0, 1, 2: // i64 arithmetic
		ops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor}
		v := g.b.Bin(pick(g.rng, ops), g.pickI64(p), g.pickI64(p))
		p.i64 = append(p.i64, v)
	case 3: // division/remainder with a nonzero divisor
		ops := []ir.Op{ir.OpSDiv, ir.OpUDiv, ir.OpSRem, ir.OpURem}
		div := g.b.Or(g.pickI64(p), ir.ConstInt(ir.I64, 1))
		p.i64 = append(p.i64, g.b.Bin(pick(g.rng, ops), g.pickI64(p), div))
	case 4: // masked shift
		ops := []ir.Op{ir.OpShl, ir.OpLShr, ir.OpAShr}
		amt := g.b.And(g.pickI64(p), ir.ConstInt(ir.I64, 63))
		p.i64 = append(p.i64, g.b.Bin(pick(g.rng, ops), g.pickI64(p), amt))
	case 5: // f64 arithmetic and intrinsics
		switch g.rng.Intn(6) {
		case 0:
			ops := []ir.Op{ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv}
			p.f64 = append(p.f64, g.b.Bin(pick(g.rng, ops), g.pickF64(p), g.pickF64(p)))
		case 1:
			ops := []ir.Op{ir.OpFMin, ir.OpFMax}
			p.f64 = append(p.f64, g.b.MathBinary(pick(g.rng, ops), g.pickF64(p), g.pickF64(p)))
		case 2:
			p.f64 = append(p.f64, g.b.MathUnary(ir.OpFAbs, g.pickF64(p)))
		case 3:
			p.f64 = append(p.f64, g.b.MathUnary(ir.OpFloor, g.pickF64(p)))
		case 4:
			p.f64 = append(p.f64, g.b.MathUnary(ir.OpSqrt, g.b.MathUnary(ir.OpFAbs, g.pickF64(p))))
		default:
			p.f64 = append(p.f64, g.b.Conv(ir.OpSIToFP, g.pickI64(p), ir.F64))
		}
	case 6: // f64 -> i64, clamped so the conversion is in range everywhere
		x := g.b.MathBinary(ir.OpFMax, g.b.MathBinary(ir.OpFMin, g.pickF64(p), ir.ConstFloat(ir.F64, 1e9)), ir.ConstFloat(ir.F64, -1e9))
		p.i64 = append(p.i64, g.b.Conv(ir.OpFPToSI, x, ir.I64))
	case 7: // mixed integer widths
		switch g.rng.Intn(4) {
		case 0:
			p.i32 = append(p.i32, g.b.Conv(ir.OpTrunc, g.pickI64(p), ir.I32))
		case 1:
			p.i64 = append(p.i64, g.b.Conv(ir.OpSExt, g.pickI32(p), ir.I64))
		case 2:
			p.i64 = append(p.i64, g.b.Conv(ir.OpZExt, g.pickI32(p), ir.I64))
		default:
			ops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpXor}
			p.i32 = append(p.i32, g.b.Bin(pick(g.rng, ops), g.pickI32(p), g.pickI32(p)))
		}
	case 8: // select
		if g.rng.Intn(2) == 0 {
			p.f64 = append(p.f64, g.b.Select(g.takeBool(p), g.pickF64(p), g.pickF64(p)))
		} else {
			p.i64 = append(p.i64, g.b.Select(g.takeBool(p), g.pickI64(p), g.pickI64(p)))
		}
	default: // a fresh input load
		if g.rng.Intn(2) == 0 {
			p.f64 = append(p.f64, g.loadF64(p))
		} else {
			p.i64 = append(p.i64, g.loadI64(p))
		}
	}
}

// store writes a pool value to the thread's own output slot. Mid-kernel
// stores exercise store handling under divergence; they are safe because
// each thread only ever touches index gid.
func (g *gen) store(p *pool) {
	if g.rng.Intn(2) == 0 {
		g.b.Store(g.pickF64(p), g.b.GEP(g.fout, g.gid64))
	} else {
		g.b.Store(g.pickI64(p), g.b.GEP(g.iout, g.gid64))
	}
}

// diamond emits an if/else that rejoins at a merge block, with phis
// joining values from the two arms — the merged-diamond shape
// control-flow unmerging targets.
func (g *gen) diamond(p *pool, depth int) {
	cond := g.takeBool(p)
	then := g.newBlock("then")
	els := g.newBlock("else")
	merge := g.newBlock("merge")
	g.b.CondBr(cond, then, els)

	g.b.SetBlock(then)
	tp := p.clone()
	g.seq(tp, depth+1, false)
	thenEnd := g.b.Block()
	g.b.Br(merge)

	g.b.SetBlock(els)
	ep := p.clone()
	g.seq(ep, depth+1, false)
	elsEnd := g.b.Block()
	g.b.Br(merge)

	g.b.SetBlock(merge)
	for k := g.rng.Intn(3); k >= 0; k-- {
		var phi *ir.Instr
		switch g.rng.Intn(3) {
		case 0:
			phi = g.b.Phi(ir.F64, g.uniq("m"))
			phi.PhiAddIncoming(pick(g.rng, tp.f64), thenEnd)
			phi.PhiAddIncoming(pick(g.rng, ep.f64), elsEnd)
			p.f64 = append(p.f64, phi)
		case 1:
			phi = g.b.Phi(ir.I64, g.uniq("m"))
			phi.PhiAddIncoming(pick(g.rng, tp.i64), thenEnd)
			phi.PhiAddIncoming(pick(g.rng, ep.i64), elsEnd)
			p.i64 = append(p.i64, phi)
		default:
			phi = g.b.Phi(ir.I32, g.uniq("m"))
			phi.PhiAddIncoming(pick(g.rng, tp.i32), thenEnd)
			phi.PhiAddIncoming(pick(g.rng, ep.i32), elsEnd)
			p.i32 = append(p.i32, phi)
		}
	}
}

// loop emits a counted loop (constant or n-derived trip count) with an
// induction variable and up to two accumulators carried by header phis.
// The header phis dominate the exit, so they join the outer pool.
func (g *gen) loop(p *pool, depth int, uniform bool) {
	var trip ir.Value
	if g.rng.Intn(2) == 0 {
		trip = ir.ConstInt(ir.I64, int64(1+g.rng.Intn(6)))
	} else {
		// 1..8, uniform across threads because n is a kernel parameter.
		trip = g.b.Add(g.b.And(g.n, ir.ConstInt(ir.I64, 7)), ir.ConstInt(ir.I64, 1))
	}
	pre := g.b.Block()
	header := g.newBlock("header")
	body := g.newBlock("body")
	exit := g.newBlock("exit")
	fInit := g.pickF64(p)
	iInit := g.pickI64(p)
	g.b.Br(header)

	g.b.SetBlock(header)
	iv := g.b.Phi(ir.I64, g.uniq("i"))
	iv.PhiAddIncoming(ir.ConstInt(ir.I64, 0), pre)
	fAcc := g.b.Phi(ir.F64, g.uniq("facc"))
	fAcc.PhiAddIncoming(fInit, pre)
	iAcc := g.b.Phi(ir.I64, g.uniq("iacc"))
	iAcc.PhiAddIncoming(iInit, pre)
	cond := g.b.ICmp(ir.SLT, iv, trip)
	g.b.CondBr(cond, body, exit)

	g.b.SetBlock(body)
	bp := p.clone()
	bp.i64 = append(bp.i64, iv, iAcc)
	bp.f64 = append(bp.f64, fAcc)
	g.seq(bp, depth+1, uniform)
	// Latch: advance the accumulators and the induction variable.
	fNext := g.b.FAdd(fAcc, g.pickF64(bp))
	iNext := g.b.Xor(iAcc, g.pickI64(bp))
	inc := g.b.Add(iv, ir.ConstInt(ir.I64, 1))
	latch := g.b.Block()
	g.b.Br(header)
	iv.PhiAddIncoming(inc, latch)
	fAcc.PhiAddIncoming(fNext, latch)
	iAcc.PhiAddIncoming(iNext, latch)

	g.b.SetBlock(exit)
	p.f64 = append(p.f64, fAcc)
	p.i64 = append(p.i64, iv, iAcc)
}
