// Package harden supplies the pass-pipeline crash-containment layer: a
// Guard that runs each pass invocation against an IR snapshot, recovers
// panics, optionally verifies the IR afterwards, and rolls the function
// back to the snapshot on failure so one bad pass degrades a single kernel
// to its pre-pass form instead of killing a whole experiment campaign. The
// package also hosts the seeded random kernel generator (gen.go) that
// feeds the differential fuzzer in harden/fuzz.
//
// harden is deliberately a leaf: it imports only ir and analysis, so the
// pipeline can depend on it while the fuzzer's oracle (which needs the
// pipeline, interpreter, and simulator) lives in the harden/fuzz
// subpackage.
package harden

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"uu/internal/analysis"
	"uu/internal/ir"
)

// FailureKind classifies what the guard caught.
type FailureKind string

// The two containment triggers.
const (
	// FailurePanic means the pass panicked; the function was rolled back to
	// the pre-pass snapshot.
	FailurePanic FailureKind = "panic"
	// FailureVerify means the pass returned but left IR the verifier
	// rejects; the function was rolled back to the pre-pass snapshot.
	FailureVerify FailureKind = "verify"
)

// PassFailure is the structured record of one contained pass failure.
type PassFailure struct {
	Pass     string      // pass (or phase) name as instrumented in Stats
	Function string      // function being compiled
	Kind     FailureKind // panic or verify
	Err      string      // panic value or verifier error
	Stack    string      // goroutine stack at the recovery point (panics only)
	IR       string      // pre-pass IR snapshot, the reproducer input
	IRDump   string      // file the snapshot was written to (when DumpDir set)
}

// String formats the failure as a one-line report entry.
func (pf *PassFailure) String() string {
	s := fmt.Sprintf("%s: %s in %s: %s", pf.Function, pf.Kind, pf.Pass, firstLine(pf.Err))
	if pf.IRDump != "" {
		s += " (ir: " + pf.IRDump + ")"
	}
	return s
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// Guard contains pass failures. The zero value contains panics only; set
// Verify to also reject IR the verifier refuses. A Guard may be shared by
// concurrent compilations (the experiment harness shares one across its
// worker pool); the failure list is mutex-protected.
type Guard struct {
	// Verify runs ir.Verify after every contained invocation and treats a
	// rejection like a crash (rollback + record).
	Verify bool
	// DumpDir, when set, receives one pre-pass IR file per failure; the
	// path is recorded in PassFailure.IRDump. Dump errors are ignored (the
	// in-memory IR field always carries the snapshot).
	DumpDir string

	mu       sync.Mutex
	failures []PassFailure
	dumpSeq  int
}

// Failures returns a snapshot of the failures recorded so far.
func (g *Guard) Failures() []PassFailure {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]PassFailure(nil), g.failures...)
}

// Run executes run (one pass invocation on f) under containment: the IR is
// snapshotted first; a panic or — with Verify set — a post-run verifier
// rejection rolls f back to the snapshot, invalidates every cached
// analysis (the restored body is made of fresh objects), records a
// PassFailure, and reports failed=true with an Unchanged declaration so a
// fixpoint driver does not loop on the rollback. verifyTime is the wall
// time spent in ir.Verify (zero when Verify is off), reported separately
// so callers can keep their verify-time accounting exact.
func (g *Guard) Run(name string, f *ir.Function, am *analysis.AnalysisManager, run func() analysis.PreservedAnalyses) (pa analysis.PreservedAnalyses, verifyTime time.Duration, failed bool) {
	snap := ir.Clone(f)
	pa, panicVal, stack := invoke(run)
	if stack != "" {
		g.contain(name, f, am, snap, FailurePanic, panicVal, stack)
		return analysis.Unchanged(), 0, true
	}
	if g.Verify {
		v0 := time.Now()
		err := ir.Verify(f)
		verifyTime = time.Since(v0)
		if err != nil {
			g.contain(name, f, am, snap, FailureVerify, err.Error(), "")
			return analysis.Unchanged(), verifyTime, true
		}
	}
	return pa, verifyTime, false
}

// RunPass is Run specialized to an analysis.Pass.
func (g *Guard) RunPass(p analysis.Pass, f *ir.Function, am *analysis.AnalysisManager) (analysis.PreservedAnalyses, time.Duration, bool) {
	return g.Run(p.Name(), f, am, func() analysis.PreservedAnalyses { return p.Run(f, am) })
}

// invoke runs the pass body, converting a panic into (message, stack).
// stack is non-empty exactly when the body panicked.
func invoke(run func() analysis.PreservedAnalyses) (pa analysis.PreservedAnalyses, panicVal, stack string) {
	defer func() {
		if r := recover(); r != nil {
			panicVal = fmt.Sprint(r)
			stack = string(debug.Stack())
		}
	}()
	pa = run()
	return
}

// contain rolls f back to snap and records the failure. The snapshot text
// is captured before Restore guts the snapshot function.
func (g *Guard) contain(name string, f *ir.Function, am *analysis.AnalysisManager, snap *ir.Function, kind FailureKind, msg, stack string) {
	irText := snap.String()
	ir.Restore(f, snap)
	am.InvalidateAll()
	pf := PassFailure{
		Pass:     name,
		Function: f.Name,
		Kind:     kind,
		Err:      msg,
		Stack:    stack,
		IR:       irText,
	}
	g.mu.Lock()
	g.dumpSeq++
	seq := g.dumpSeq
	g.mu.Unlock()
	if g.DumpDir != "" {
		name := fmt.Sprintf("%s-%s-%d.ir", sanitize(f.Name), sanitize(name), seq)
		path := filepath.Join(g.DumpDir, name)
		if err := os.MkdirAll(g.DumpDir, 0o755); err == nil {
			if err := os.WriteFile(path, []byte(irText), 0o644); err == nil {
				pf.IRDump = path
			}
		}
	}
	g.mu.Lock()
	g.failures = append(g.failures, pf)
	g.mu.Unlock()
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '_'
	}, s)
}
