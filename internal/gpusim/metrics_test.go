package gpusim

import (
	"testing"

	"uu/internal/codegen"
	"uu/internal/interp"
	"uu/internal/pipeline"
)

func TestMetricsAddAndScale(t *testing.T) {
	a := &Metrics{Cycles: 100, WarpInstrs: 10, ThreadInstrs: 320, ActiveSum: 320,
		GldTransactions: 4, GldBytes: 128, StallInstFetch: 16, DepStallCycles: 8, Warps: 1}
	a.ClassThread[codegen.ClassCompute] = 200
	b := &Metrics{Cycles: 50, WarpInstrs: 5, ThreadInstrs: 160, ActiveSum: 80, Warps: 1}
	b.ClassThread[codegen.ClassCompute] = 100
	a.Add(b)
	if a.Cycles != 150 || a.WarpInstrs != 15 || a.ThreadInstrs != 480 || a.Warps != 2 {
		t.Fatalf("Add wrong: %+v", a)
	}
	if a.ClassThread[codegen.ClassCompute] != 300 {
		t.Fatalf("class add wrong")
	}
	a.Scale(2)
	if a.Cycles != 300 || a.GldTransactions != 8 || a.StallInstFetch != 32 {
		t.Fatalf("Scale wrong: %+v", a)
	}
}

func TestMetricsDerived(t *testing.T) {
	cfg := V100()
	m := &Metrics{Cycles: 1000, WarpInstrs: 100, ThreadInstrs: 1600, ActiveSum: 1600, StallInstFetch: 100}
	if got := m.IPC(); got != 1.6 {
		t.Fatalf("IPC = %v", got)
	}
	if got := m.WarpExecutionEfficiency(cfg); got != 0.5 {
		t.Fatalf("WEE = %v", got)
	}
	if got := m.StallInstFetchPct(); got != 0.1 {
		t.Fatalf("stall pct = %v", got)
	}
	if m.KernelMillis(cfg) <= 0 {
		t.Fatalf("kernel time must be positive")
	}
	var zero Metrics
	if zero.IPC() != 0 || zero.WarpExecutionEfficiency(cfg) != 0 || zero.StallInstFetchPct() != 0 {
		t.Fatalf("zero metrics should not divide by zero")
	}
}

func TestITSOverlapReducesDivergenceCost(t *testing.T) {
	// The same divergent kernel costs more cycles without independent thread
	// scheduling (pre-Volta) than with it.
	src := `
kernel d(long* restrict out) {
  long i = (long)tid();
  long acc = 0;
  for (long k = 0; k < 64; k++) {
    if (((i + k) & 1) != 0) { acc += k; } else { acc -= k; }
  }
  out[i] = acc;
}
`
	p := build(t, src, pipeline.Options{Config: pipeline.Baseline, DisableIfConvert: true})
	run := func(overlap float64) int64 {
		cfg := V100()
		cfg.ITSOverlap = overlap
		mem := interp.NewMemory(8 * 32)
		m, err := Run(p, []interp.Value{interp.IntVal(0)}, mem, Launch{GridDim: 1, BlockDim: 32}, cfg)
		if err != nil {
			t.Fatalf("sim: %v", err)
		}
		return m.Cycles
	}
	volta := run(0.85)
	lockstep := run(0)
	if volta >= lockstep {
		t.Fatalf("ITS overlap should reduce divergent cost: volta=%d lockstep=%d", volta, lockstep)
	}
}

func TestICacheCapacityMissesOnLargeCode(t *testing.T) {
	// A loop whose body exceeds the icache thrashes every iteration.
	cfg := V100()
	cfg.ICacheLines = 2 // tiny cache: 16 instructions
	src := `
kernel big(double* restrict out, long n) {
  double a = 1.0;
  for (long i = 0; i < n; i++) {
    a = a * 1.0001 + 0.1;
    a = a * 0.9999 + 0.2;
    a = a * 1.0002 + 0.3;
    a = a * 0.9998 + 0.4;
    a = a * 1.0003 + 0.5;
    a = a * 0.9997 + 0.6;
    a = a * 1.0004 + 0.7;
    a = a * 0.9996 + 0.8;
  }
  out[0] = a;
}
`
	p := build(t, src, pipeline.Options{Config: pipeline.Baseline})
	mem := interp.NewMemory(8)
	m, err := Run(p, []interp.Value{interp.IntVal(0), interp.IntVal(500)}, mem, Launch{GridDim: 1, BlockDim: 1}, cfg)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	if pct := m.StallInstFetchPct(); pct < 0.2 {
		t.Fatalf("tiny icache should thrash: stall=%.2f%%", pct*100)
	}
}

func TestScoreboardExposesDependentLoads(t *testing.T) {
	// A pointer-chase (dependent loads) must cost more than independent
	// loads of the same count.
	chase := `
kernel c(long* restrict next, long* restrict out, long n) {
  long p = 0;
  for (long i = 0; i < n; i++) {
    p = next[p];
  }
  out[0] = p;
}
`
	indep := `
kernel s(long* restrict next, long* restrict out, long n) {
  long acc = 0;
  for (long i = 0; i < n; i++) {
    acc += next[i];
  }
  out[0] = acc;
}
`
	const n = 256
	mkMem := func() *interp.Memory {
		mem := interp.NewMemory(8*n + 8)
		for i := int64(0); i < n; i++ {
			mem.SetI64(0, i, (i+1)%n)
		}
		return mem
	}
	cfg := V100()
	pc := build(t, chase, pipeline.Options{Config: pipeline.Baseline})
	ps := build(t, indep, pipeline.Options{Config: pipeline.Baseline})
	args := []interp.Value{interp.IntVal(0), interp.IntVal(8 * n), interp.IntVal(n)}
	mc, err := Run(pc, args, mkMem(), Launch{GridDim: 1, BlockDim: 1}, cfg)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	ms, err := Run(ps, args, mkMem(), Launch{GridDim: 1, BlockDim: 1}, cfg)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	// The in-order scoreboard exposes dependency stalls for both loops (each
	// iteration consumes its load); what it must guarantee is that stalls
	// are visible at all and that they scale with the modelled latency.
	if mc.DepStallCycles == 0 || ms.DepStallCycles == 0 {
		t.Fatalf("dependent loads should expose stalls: chase=%d indep=%d",
			mc.DepStallCycles, ms.DepStallCycles)
	}
	slow := cfg
	slow.MemLoadLatency *= 4
	mc2, err := Run(pc, args, mkMem(), Launch{GridDim: 1, BlockDim: 1}, slow)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	if mc2.Cycles <= mc.Cycles {
		t.Fatalf("quadrupled load latency should cost cycles: %d vs %d", mc2.Cycles, mc.Cycles)
	}
}
