package gpusim

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"uu/internal/interp"
	"uu/internal/pipeline"
)

// TestProfileWorkerInvariance checks the per-PC counter contract of the
// parallel scheduler: for every worker count the profile is identical to
// the sequential schedule, counter for counter. The cases cover the merge
// paths: the optimistic merge plus fresh-warp audit compensation
// (compute), partial final warps (divergent), the conflict-detected
// sequential fallback (cross-warp chain), and the LRU-refused icache
// overflow path.
func TestProfileWorkerInvariance(t *testing.T) {
	divergentSrc := `
kernel div(double* restrict x, long n) {
  long i = (long)global_id();
  if (i < n) {
    double v = x[i];
    if (i % 3 == 0) {
      v = v * 2.0 + 1.0;
    } else if (i % 3 == 1) {
      v = v / 3.0;
    }
    x[i] = v + 0.5;
  }
}
`
	chainSrc := `
kernel chain(long* restrict x, long n) {
  long i = (long)global_id();
  if (i < n) {
    long v = 1;
    if (i >= 32) {
      v = x[i - 32] + 1;
    }
    x[i] = v;
  }
}
`
	tiny := V100()
	tiny.ICacheLines = 2

	cases := []struct {
		name   string
		src    string
		launch Launch
		cfg    DeviceConfig
	}{
		{"compute", axpySrc, Launch{GridDim: 4, BlockDim: 64}, V100()},
		{"partial_warp_divergent", divergentSrc, Launch{GridDim: 3, BlockDim: 40}, V100()},
		{"cross_warp_chain", chainSrc, Launch{GridDim: 2, BlockDim: 64}, V100()},
		{"icache_thrash", axpySrc, Launch{GridDim: 4, BlockDim: 64}, tiny},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := build(t, tc.src, pipeline.Options{Config: pipeline.Baseline})
			init := interp.NewMemory(1 << 15)
			for i := int64(0); i < 256; i++ {
				init.SetF64(0, i, float64(i)*0.25)
			}
			n := int64(tc.launch.Threads())
			args := make([]interp.Value, len(p.ParamRegs))
			for i := range args {
				args[i] = interp.IntVal(0)
			}
			args[len(args)-1] = interp.IntVal(n)
			if tc.name == "compute" || tc.name == "icache_thrash" {
				// axpy(x, y, a, n)
				args = []interp.Value{interp.IntVal(0), interp.IntVal(8 * n), interp.FloatVal(3), interp.IntVal(n)}
			}

			var ref *Profile
			for _, workers := range []int{1, 2, 4, 8} {
				mem := &interp.Memory{Data: append([]byte(nil), init.Data...)}
				prof := NewProfile(p)
				if _, err := RunWorkersProfiled(p, args, mem, tc.launch, tc.cfg, workers, nil, 0, prof); err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				nonzero := false
				for c := range prof.Counters {
					for _, v := range prof.Counters[c] {
						if v != 0 {
							nonzero = true
						}
						if v < 0 {
							t.Fatalf("workers=%d: negative counter %s: %d", workers, ProfCounter(c), v)
						}
					}
				}
				if !nonzero {
					t.Fatalf("workers=%d: profile is all zeros", workers)
				}
				if ref == nil {
					ref = prof
					continue
				}
				if !reflect.DeepEqual(prof.Counters, ref.Counters) {
					t.Errorf("workers=%d: profile diverges from sequential", workers)
				}
			}
		})
	}
}

// TestProfCounterNamesDocumented is the metrics-documentation lint: every
// per-PC counter name the profiler can emit must have a row in
// docs/METRICS.md, so reports never show a counter the documentation
// doesn't explain. CI runs this as a dedicated step.
func TestProfCounterNamesDocumented(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("..", "..", "docs", "METRICS.md"))
	if err != nil {
		t.Fatalf("reading metrics documentation: %v", err)
	}
	for c := ProfCounter(0); c < ProfNumCounters; c++ {
		name := c.String()
		if name == "" || name == "?" {
			t.Errorf("ProfCounter(%d) has no name", int(c))
			continue
		}
		if !strings.Contains(string(doc), "`"+name+"`") {
			t.Errorf("counter %q is not documented in docs/METRICS.md", name)
		}
	}
}
