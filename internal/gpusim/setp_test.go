package gpusim

import (
	"fmt"
	"testing"

	"uu/internal/codegen"
	"uu/internal/interp"
	"uu/internal/ir"
)

// setpProgram builds a minimal VPTX program that compares its first two
// parameters with the given predicate at the given operand type and stores
// 1 or 0 (via selp) into the address held by the third parameter.
func setpProgram(t *ir.Type, pred ir.Pred) *codegen.Program {
	one := codegen.Operand{Reg: codegen.NoReg, Imm: ir.ConstInt(ir.I64, 1)}
	zero := codegen.Operand{Reg: codegen.NoReg, Imm: ir.ConstInt(ir.I64, 0)}
	blk := &codegen.Block{Index: 0, Name: "entry", Instrs: []codegen.Instr{
		{Kind: codegen.KSetp, IROp: ir.OpICmp, Pred: pred, Type: t, Dst: 3,
			Srcs: []codegen.Operand{{Reg: 0}, {Reg: 1}}},
		{Kind: codegen.KSelp, Type: ir.I64, Dst: 4,
			Srcs: []codegen.Operand{{Reg: 3}, one, zero}},
		{Kind: codegen.KSt, Type: ir.I64, Dst: codegen.NoReg,
			Srcs: []codegen.Operand{{Reg: 4}, {Reg: 2}}},
		{Kind: codegen.KRet, Dst: codegen.NoReg},
	}}
	return &codegen.Program{
		Name:      "setp_unit",
		Blocks:    []*codegen.Block{blk},
		NumRegs:   5,
		ParamRegs: []codegen.Reg{0, 1, 2},
		ParamTyps: []*ir.Type{t, t, ir.PointerTo(ir.I64)},
		IPDom:     []int{-1},
	}
}

// TestSetpUnsignedPredicates pins the unsigned compare semantics at every
// integer width: operands live in registers in canonical sign-extended
// form, so ULT/ULE/UGT/UGE must reinterpret them through the operand
// type's zero-extension mask rather than compare the int64 payloads. The
// -1 vs 1 cases are the regression: a signed compare (or a compare of the
// raw payloads) orders them the other way.
func TestSetpUnsignedPredicates(t *testing.T) {
	types := []*ir.Type{ir.I8, ir.I32, ir.I64}
	preds := []ir.Pred{ir.ULT, ir.ULE, ir.UGT, ir.UGE}
	pairs := [][2]int64{{-1, 1}, {1, -1}, {-1, -1}, {5, 3}, {0, -128}}

	eval := func(pred ir.Pred, a, b uint64) bool {
		switch pred {
		case ir.ULT:
			return a < b
		case ir.ULE:
			return a <= b
		case ir.UGT:
			return a > b
		case ir.UGE:
			return a >= b
		}
		panic("unreachable")
	}

	for _, typ := range types {
		for _, pred := range preds {
			p := setpProgram(typ, pred)
			dp, err := decoded(p)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			for _, pair := range pairs {
				// Canonical register form: sign-extended, as the simulator
				// keeps all integer registers.
				a := ir.ConstInt(typ, pair[0]).Int
				b := ir.ConstInt(typ, pair[1]).Int
				mask := uMask(typ)
				want := int64(0)
				if eval(pred, uint64(a)&mask, uint64(b)&mask) {
					want = 1
				}
				name := fmt.Sprintf("%s_%s_%d_%d", typ, pred, pair[0], pair[1])

				// Full simulator path (specialized xSetpI lane loop).
				mem := interp.NewMemory(8)
				args := []interp.Value{interp.IntVal(a), interp.IntVal(b), interp.IntVal(0)}
				if _, err := Run(p, args, mem, Launch{GridDim: 1, BlockDim: 1}, V100()); err != nil {
					t.Fatalf("%s: sim: %v", name, err)
				}
				if got := mem.I64(0, 0); got != want {
					t.Errorf("%s: run loop: got %d, want %d", name, got, want)
				}

				// evalScalar fallback path must agree. It reads the switch
				// core's boxed register file, so build that core explicitly.
				swCfg := V100()
				swCfg.Exec = ExecSwitch
				w := newWarpSim(dp, swCfg, mem)
				w.regs[0] = interp.IntVal(a)
				w.regs[1] = interp.IntVal(b)
				if got := w.evalScalar(&dp.instrs[0], 0).I; got != want {
					t.Errorf("%s: evalScalar: got %d, want %d", name, got, want)
				}
			}
		}
	}
}

// TestSetpSignedStillSigned guards against over-masking: signed predicates
// must keep comparing the sign-extended payloads.
func TestSetpSignedStillSigned(t *testing.T) {
	for _, typ := range []*ir.Type{ir.I8, ir.I32, ir.I64} {
		p := setpProgram(typ, ir.SLT)
		mem := interp.NewMemory(8)
		args := []interp.Value{interp.IntVal(-1), interp.IntVal(1), interp.IntVal(0)}
		if _, err := Run(p, args, mem, Launch{GridDim: 1, BlockDim: 1}, V100()); err != nil {
			t.Fatalf("%s: sim: %v", typ, err)
		}
		if got := mem.I64(0, 0); got != 1 {
			t.Errorf("%s: slt -1 < 1: got %d, want 1", typ, got)
		}
	}
}
