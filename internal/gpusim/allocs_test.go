package gpusim

import (
	"testing"

	"uu/internal/interp"
	"uu/internal/pipeline"
)

// TestWarpLoopZeroAllocs enforces the steady-state allocation contract of
// both execution cores: after one warm-up warp (which may grow the
// reconvergence stack once), running further warps performs no heap
// allocations at all. This is what makes the simulator's throughput scale
// with instruction count instead of with GC pressure. The threaded core's
// compilation (closures, const pool, SoA files) happens entirely before
// the first warp, so it is held to the identical contract.
func TestWarpLoopZeroAllocs(t *testing.T) {
	divergentSrc := `
kernel d(double* restrict x, long n) {
  long i = (long)global_id();
  if (i < n) {
    double v = x[i];
    if (i % 2 == 0) {
      v = v * 3.0 + 1.0;
    } else {
      v = v / 2.0;
    }
    x[i] = v;
  }
}
`
	for _, tc := range []struct {
		name string
		src  string
	}{
		{"compute", axpySrc},
		{"divergent", divergentSrc},
	} {
		for _, exec := range Execs() {
			exec := exec
			t.Run(tc.name+"/"+exec.String(), func(t *testing.T) {
				p := build(t, tc.src, pipeline.Options{Config: pipeline.Baseline})
				cfg := V100()
				cfg.Exec = exec
				mem := interp.NewMemory(1 << 16)
				args := make([]interp.Value, len(p.ParamRegs))
				for i := range args {
					args[i] = interp.IntVal(64) // in-bounds pointer / small n
				}
				launch := Launch{GridDim: 4, BlockDim: 64}

				dp, err := decoded(p)
				if err != nil {
					t.Fatalf("decode: %v", err)
				}
				// newWarpSim compiles the threaded program (memoized on
				// dp), so the AllocsPerRun loops below measure only the
				// warp loop.
				w := newWarpSim(dp, cfg, mem)
				w.fetchMode = fetchBitset
				w.touched = make([]uint64, bitWords(dp.numLines(cfg.ICacheLineInstrs)))

				var m Metrics
				if err := w.run(args, launch, 0, cfg.WarpSize, &m); err != nil {
					t.Fatalf("warm-up run: %v", err)
				}
				allocs := testing.AllocsPerRun(10, func() {
					if err := w.run(args, launch, cfg.WarpSize, cfg.WarpSize, &m); err != nil {
						t.Fatalf("run: %v", err)
					}
				})
				if allocs != 0 {
					t.Fatalf("steady-state warp loop allocates: %v allocs/run, want 0", allocs)
				}

				// Profiling must not change the contract: the counter arrays are
				// allocated once up front (NewProfile), and the hot loop only
				// increments them in place.
				w.prof = newProfileN(dp.name, len(dp.instrs))
				if err := w.run(args, launch, 0, cfg.WarpSize, &m); err != nil {
					t.Fatalf("profiled warm-up run: %v", err)
				}
				allocs = testing.AllocsPerRun(10, func() {
					if err := w.run(args, launch, cfg.WarpSize, cfg.WarpSize, &m); err != nil {
						t.Fatalf("profiled run: %v", err)
					}
				})
				if allocs != 0 {
					t.Fatalf("profiled warp loop allocates: %v allocs/run, want 0", allocs)
				}
			})
		}
	}
}
