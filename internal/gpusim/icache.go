package gpusim

// lruICache is an exact O(1) LRU instruction cache: a line -> slot map
// plus an intrusive doubly-linked recency list over the slots. It models
// the same policy as a tick-stamped map with min-tick eviction (update
// recency on hit and insert, evict the least recently used line when
// full) without the per-miss full scan, and — unlike an approximating
// clock hand — reproduces that policy's eviction victims exactly, which
// the golden metrics corpus depends on. Only programs that overflow the
// icache reach this path; fitting programs use the first-touch bitset.
type lruICache struct {
	slot []int32 // line -> slot index + 1; 0 = not resident
	line []int32 // slot -> resident line
	prev []int32 // slot -> more recently used slot (-1 = head)
	next []int32 // slot -> less recently used slot (-1 = tail)
	head int32   // most recently used slot
	tail int32   // least recently used slot
	used int32
	cap  int32
}

func (c *lruICache) init(numLines, capacity int) {
	c.slot = make([]int32, numLines)
	c.line = make([]int32, capacity)
	c.prev = make([]int32, capacity)
	c.next = make([]int32, capacity)
	c.head, c.tail = -1, -1
	c.used = 0
	c.cap = int32(capacity)
}

// fetch touches line and reports whether the access missed.
func (c *lruICache) fetch(line int32) bool {
	if sp := c.slot[line]; sp != 0 {
		c.moveToFront(sp - 1)
		return false
	}
	var s int32
	if c.used < c.cap {
		s = c.used
		c.used++
		c.pushFront(s)
	} else {
		s = c.tail
		c.slot[c.line[s]] = 0 // evict the LRU line
		c.moveToFront(s)
	}
	c.line[s] = line
	c.slot[line] = s + 1
	return true
}

func (c *lruICache) pushFront(s int32) {
	c.prev[s] = -1
	c.next[s] = c.head
	if c.head >= 0 {
		c.prev[c.head] = s
	}
	c.head = s
	if c.tail < 0 {
		c.tail = s
	}
}

func (c *lruICache) moveToFront(s int32) {
	if s == c.head {
		return
	}
	p, n := c.prev[s], c.next[s]
	if p >= 0 {
		c.next[p] = n
	}
	if n >= 0 {
		c.prev[n] = p
	}
	if s == c.tail {
		c.tail = p
	}
	c.pushFront(s)
}
