package gpusim

import (
	"errors"
	"testing"

	"uu/internal/codegen"
	"uu/internal/interp"
	"uu/internal/irparse"
)

// spinSrc never terminates: the induction variable is multiplied by zero
// every iteration, so the exit condition is never reached. It is
// verifier-clean and lowers like any other kernel, which is exactly the
// shape a miscompiled loop bound takes.
const spinSrc = `func @spin(i64 %n) {
entry:
  br %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i2, %loop ]
  %i2 = mul i64 %i, i64 0
  %c = icmp slt i64 %i2, i64 1
  condbr i1 %c, %loop, %exit
exit:
  ret
}
`

func spinProgram(t *testing.T) *codegen.Program {
	t.Helper()
	f, err := irparse.ParseFunc(spinSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := codegen.Lower(f)
	if err != nil {
		t.Fatalf("codegen: %v", err)
	}
	return p
}

func TestCycleBudgetStopsNonTerminatingKernel(t *testing.T) {
	p := spinProgram(t)
	args := []interp.Value{interp.IntVal(4)}
	launch := Launch{GridDim: 2, BlockDim: 64}
	for _, workers := range []int{1, 4} {
		cfg := V100()
		cfg.MaxWarpSteps = 10_000
		mem := interp.NewMemory(64)
		_, err := RunWorkers(p, args, mem, launch, cfg, workers)
		if err == nil {
			t.Fatalf("workers=%d: non-terminating kernel returned without error", workers)
		}
		if !errors.Is(err, ErrCycleBudget) {
			t.Fatalf("workers=%d: error is not ErrCycleBudget: %v", workers, err)
		}
	}
}

func TestCycleBudgetZeroMeansDefault(t *testing.T) {
	// A terminating kernel with budget 0 must run to completion under the
	// package default rather than trip at zero steps.
	const oneShot = `func @one(i64 %n) {
entry:
  ret
}
`
	f, err := irparse.ParseFunc(oneShot)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := codegen.Lower(f)
	if err != nil {
		t.Fatalf("codegen: %v", err)
	}
	cfg := V100()
	if cfg.MaxWarpSteps != 0 {
		t.Fatalf("V100 should leave the budget at the default, got %d", cfg.MaxWarpSteps)
	}
	mem := interp.NewMemory(64)
	if _, err := Run(p, []interp.Value{interp.IntVal(1)}, mem, Launch{GridDim: 1, BlockDim: 32}, cfg); err != nil {
		t.Fatalf("run: %v", err)
	}
}
