package gpusim

import "uu/internal/codegen"

// ProfCounter indexes one per-PC counter array of a Profile. The hotspot
// profiler accumulates these while a kernel runs and internal/profile joins
// them with the program's line table (codegen.Program.Lines) to attribute
// cost to source lines and loops.
type ProfCounter int

// The per-PC counters. The *_fp counters are fixed-point with ProfFPScale
// fractional steps: each executed instruction contributes a whole number of
// steps, so the totals are sums of integers — associative and commutative —
// and the merged profile is byte-identical for any warp partition across
// simulation workers.
const (
	// ProfIssueCycles is issue cost charged at each PC (fixed-point,
	// ProfFPScale steps per cycle; issue scales with the active-lane count
	// under independent thread scheduling, hence the fraction).
	ProfIssueCycles ProfCounter = iota
	// ProfDepStall is exposed dependency-stall (scoreboard) cycles charged
	// while issuing each PC (fixed-point, ProfFPScale steps per cycle).
	ProfDepStall
	// ProfFetchStall is instruction-fetch stall cycles charged at each PC
	// (whole cycles: every icache miss costs ICacheMissCycles).
	ProfFetchStall
	// ProfWarpExecs counts warp-level executions of each PC.
	ProfWarpExecs
	// ProfThreadExecs counts thread-level executions (active lanes summed
	// over warp executions) of each PC.
	ProfThreadExecs
	// ProfDivergeEvents counts, at each conditional-branch PC, executions
	// where both sides had active lanes — the divergences the reconvergence
	// stack must later repair.
	ProfDivergeEvents
	// ProfReconvEvents counts, at the first PC of each block, stack entries
	// that reached this block as their reconvergence point.
	ProfReconvEvents
	// ProfMemTransactions counts the memory transactions each ld/st PC
	// issued after coalescing.
	ProfMemTransactions
	// ProfMemIdeal counts the minimum transactions each ld/st PC could have
	// issued if its accesses were perfectly coalesced; the excess of
	// ProfMemTransactions over this is replay caused by scattered addresses.
	ProfMemIdeal
	// ProfBarrierWaits counts, at the first PC of each reconvergence block,
	// thread-group arrivals at a per-warp convergence barrier that had to
	// wait for sibling groups (MinSP-PC policy only; always 0 under IPDOM
	// and Vortex, whose joins are stack pops).
	ProfBarrierWaits

	ProfNumCounters
)

// ProfFPScale is the fixed-point scale of the *_fp counters: stored values
// are cycles times ProfFPScale, rounded per executed instruction.
const ProfFPScale = 256

// String returns the counter's snake_case report name. Every name returned
// here must be documented in docs/METRICS.md (enforced by a CI lint).
func (c ProfCounter) String() string {
	switch c {
	case ProfIssueCycles:
		return "issue_cycles"
	case ProfDepStall:
		return "dep_stall_cycles"
	case ProfFetchStall:
		return "fetch_stall_cycles"
	case ProfWarpExecs:
		return "warp_execs"
	case ProfThreadExecs:
		return "thread_execs"
	case ProfDivergeEvents:
		return "divergence_events"
	case ProfReconvEvents:
		return "reconvergence_events"
	case ProfMemTransactions:
		return "mem_transactions"
	case ProfMemIdeal:
		return "mem_ideal_transactions"
	case ProfBarrierWaits:
		return "barrier_wait_events"
	}
	return "?"
}

// Profile holds the per-PC hotspot counters of one kernel execution. PCs are
// the flat global instruction index (blocks in layout order, instructions in
// block order) — the same index codegen.Program.Lines and the simulator's
// pre-decoded instruction stream use, so Counters[c][pc] joins with
// Lines[pc] directly.
//
// All counters are int64 and all accumulation is integer addition, so
// merging partial profiles is exact and order-independent; RunWorkers
// produces byte-identical profiles for every worker count.
type Profile struct {
	Kernel   string
	Counters [ProfNumCounters][]int64
}

// NewProfile returns an empty profile sized for the program. Allocating the
// counter arrays up front keeps the simulator's warp loop allocation-free
// while profiling.
func NewProfile(p *codegen.Program) *Profile {
	return newProfileN(p.Name, p.NumInstrs())
}

func newProfileN(kernel string, numPCs int) *Profile {
	prof := &Profile{Kernel: kernel}
	for c := range prof.Counters {
		prof.Counters[c] = make([]int64, numPCs)
	}
	return prof
}

// NumPCs returns the number of program counters covered.
func (p *Profile) NumPCs() int { return len(p.Counters[0]) }

// Add accumulates o into p (exact: integer addition per PC).
func (p *Profile) Add(o *Profile) {
	for c := range p.Counters {
		dst, src := p.Counters[c], o.Counters[c]
		for i := range dst {
			dst[i] += src[i]
		}
	}
}

// Sub removes o from p — used by the parallel schedule to replace a warp's
// optimistic (warm-cache) contribution with its exact re-run.
func (p *Profile) Sub(o *Profile) {
	for c := range p.Counters {
		dst, src := p.Counters[c], o.Counters[c]
		for i := range dst {
			dst[i] -= src[i]
		}
	}
}

// Reset zeroes all counters, keeping the arrays.
func (p *Profile) Reset() {
	for c := range p.Counters {
		dst := p.Counters[c]
		for i := range dst {
			dst[i] = 0
		}
	}
}

// Scale multiplies all counters by k — the same sampling extrapolation
// Metrics.Scale applies when Launch.SampleWarps truncates the grid.
func (p *Profile) Scale(k float64) {
	for c := range p.Counters {
		dst := p.Counters[c]
		for i := range dst {
			dst[i] = int64(float64(dst[i]) * k)
		}
	}
}

// Cycles returns the total modelled cycles attributed to pc: issue plus
// exposed dependency stalls (rounded from fixed point) plus fetch stalls.
func (p *Profile) Cycles(pc int) int64 {
	fp := p.Counters[ProfIssueCycles][pc] + p.Counters[ProfDepStall][pc]
	return (fp+ProfFPScale/2)/ProfFPScale + p.Counters[ProfFetchStall][pc]
}

// profFP converts a per-instruction cycle contribution to fixed point.
func profFP(v float64) int64 { return int64(v*ProfFPScale + 0.5) }

// idealTransactions is the minimum transaction count a warp access of n
// lanes times size bytes could coalesce into.
func idealTransactions(n int, size, segBytes int64) int64 {
	tx := (int64(n)*size + segBytes - 1) / segBytes
	if tx < 1 {
		tx = 1
	}
	return tx
}
