package gpusim

// The Vortex-style backend models the decoupled split/join scheme of
// RISC-V GPGPUs ("Decoupled Control Flow and Data Access in RISC-V
// GPGPUs"): every divergent branch executes an explicit split that pushes
// the join continuation and both sides onto a hardware stack, and the
// matching join is a plain stack pop when a side reaches the join block.
// There is no opportunistic back-edge merging and no same-PC entry
// scanning — sibling paths that happen to meet again before their join
// point still execute separately, which is exactly where this model's
// warp efficiency diverges from IPDOM's on unstructured (unmerged)
// control flow.
//
// The continuation pushed at a split carries the full pre-split mask, so
// sides popping at the join never need to write their lanes back: the
// join block executes once, via the continuation, with every lane that
// did not retire inside the region (retire clears lanes from the whole
// stack). Nested splits joining at the same block pop through their own
// continuations the same way — only the outermost entry at a join block
// has pc != rpc and executes.
type vortexEngine struct {
	dp    *decodedProgram
	prof  *Profile
	stack []stackEntry
}

func newVortexEngine(dp *decodedProgram) *vortexEngine {
	return &vortexEngine{dp: dp, stack: make([]stackEntry, 0, 8)}
}

func (v *vortexEngine) reset(prof *Profile, fullMask uint32) {
	v.prof = prof
	v.stack = append(v.stack[:0], stackEntry{pc: 0, rpc: -1, mask: fullMask})
}

func (v *vortexEngine) next() (int, uint32, bool) {
	for len(v.stack) > 0 {
		e := &v.stack[len(v.stack)-1]
		if e.mask == 0 {
			v.stack = v.stack[:len(v.stack)-1]
			continue
		}
		if e.rpc >= 0 && e.pc == e.rpc {
			// Join: this side's lanes are already in the continuation
			// below, so the entry simply pops.
			if v.prof != nil {
				v.prof.Counters[ProfReconvEvents][v.dp.blockStart[e.pc]]++
			}
			v.stack = v.stack[:len(v.stack)-1]
			continue
		}
		return e.pc, e.mask, true
	}
	return 0, 0, false
}

func (v *vortexEngine) branch(blk int, brTaken, brNot uint32) {
	dp := v.dp
	end := dp.blockEnd[blk]
	term := &dp.instrs[end-1]
	top := len(v.stack) - 1
	switch {
	case brNot == 0:
		v.stack[top].pc = int(term.t0)
	case brTaken == 0:
		v.stack[top].pc = int(term.t1)
	default:
		if v.prof != nil {
			v.prof.Counters[ProfDivergeEvents][end-1]++
		}
		e := v.stack[top]
		if rpc := dp.ipdom[blk]; rpc >= 0 {
			// Split: continuation (full mask) at the join, then the
			// not-taken side, then the taken side on top.
			v.stack[top] = stackEntry{pc: rpc, rpc: e.rpc, mask: e.mask}
			v.stack = append(v.stack, stackEntry{pc: int(term.t1), rpc: rpc, mask: brNot})
			v.stack = append(v.stack, stackEntry{pc: int(term.t0), rpc: rpc, mask: brTaken})
		} else {
			// No join point: both sides run to ret under the enclosing
			// join.
			v.stack[top] = stackEntry{pc: int(term.t1), rpc: e.rpc, mask: brNot}
			v.stack = append(v.stack, stackEntry{pc: int(term.t0), rpc: e.rpc, mask: brTaken})
		}
	}
}

func (v *vortexEngine) jump(pc int) {
	// Strict split/join: no back-edge merging, the entry just moves.
	v.stack[len(v.stack)-1].pc = pc
}

func (v *vortexEngine) retire(mask uint32) {
	for i := range v.stack {
		v.stack[i].mask &^= mask
	}
}
