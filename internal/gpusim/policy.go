package gpusim

import "fmt"

// PolicyKind selects the divergence-management backend a device uses. The
// zero value is the IPDOM reconvergence stack, so DeviceConfig literals
// written before the policy axis existed keep their exact behavior.
type PolicyKind uint8

const (
	// PolicyIPDOM is the classic immediate-post-dominator reconvergence
	// stack with opportunistic back-edge merging (the original gpusim
	// model, calibrated against V100).
	PolicyIPDOM PolicyKind = iota
	// PolicyMinSPPC is a MinSP-PC-style independent-thread-scheduling
	// model: divergent paths become independently schedulable thread
	// groups ordered by minimum PC, and reconvergence happens at explicit
	// per-warp convergence barriers inserted at the branch's immediate
	// post-dominator.
	PolicyMinSPPC
	// PolicyVortex is a Vortex-style decoupled split/join model: a strict
	// hardware split/join stack with no opportunistic back-edge merging —
	// sibling paths that meet again before the join point still execute
	// separately until the join.
	PolicyVortex

	numPolicies // sentinel
)

// String returns the policy's registry name.
func (k PolicyKind) String() string {
	switch k {
	case PolicyIPDOM:
		return "ipdom"
	case PolicyMinSPPC:
		return "minsppc"
	case PolicyVortex:
		return "vortex"
	}
	return fmt.Sprintf("policy(%d)", uint8(k))
}

// ParsePolicy maps a registry name back to its PolicyKind.
func ParsePolicy(s string) (PolicyKind, error) {
	for k := PolicyKind(0); k < numPolicies; k++ {
		if s == k.String() {
			return k, nil
		}
	}
	return 0, fmt.Errorf("gpusim: unknown reconvergence policy %q (want ipdom, minsppc, or vortex)", s)
}

// Policies returns every PolicyKind in registry order.
func Policies() []PolicyKind {
	out := make([]PolicyKind, 0, int(numPolicies))
	for k := PolicyKind(0); k < numPolicies; k++ {
		out = append(out, k)
	}
	return out
}

// policyEngine is the reconvergence-policy contract the warp executor
// drives. The executor runs whole basic blocks; the engine decides which
// (block, mask) runs next and absorbs the control-flow outcome of each
// block. Engines are per-warp state machines: reset starts a fresh warp,
// and all state must live in buffers that are reused across warps so the
// warp loop stays allocation-free in steady state (the contract
// TestWarpLoopZeroAllocs enforces for every policy).
//
// Exactly one of branch/jump/retire is called after each executed block,
// mirroring the three terminator classes (conditional branch,
// unconditional branch, ret).
type policyEngine interface {
	// reset prepares the engine for a new warp whose full lane mask is
	// fullMask. prof may be nil (profiling disabled) and may differ
	// between warps.
	reset(prof *Profile, fullMask uint32)
	// next returns the block index and active mask to execute, or
	// ok=false when the warp has finished. Divergence/reconvergence
	// profile events are charged here and in branch, because their
	// placement is policy semantics.
	next() (blk int, mask uint32, ok bool)
	// branch resolves the conditional branch terminating blk: brTaken and
	// brNot partition the block's active mask by branch outcome (either
	// may be 0).
	branch(blk int, brTaken, brNot uint32)
	// jump follows the unconditional branch from the current block to pc.
	jump(pc int)
	// retire removes lanes that executed ret from all engine state.
	retire(mask uint32)
}

// newPolicyEngine builds the engine for the device's configured policy.
func newPolicyEngine(kind PolicyKind, dp *decodedProgram) policyEngine {
	switch kind {
	case PolicyMinSPPC:
		return newMinSPPCEngine(dp)
	case PolicyVortex:
		return newVortexEngine(dp)
	default:
		return newIPDOMEngine(dp)
	}
}

type stackEntry struct {
	pc   int // block index to execute next
	rpc  int // reconvergence block index (-1 = function exit)
	mask uint32
}

// ipdomEngine is the original gpusim divergence model: an immediate-
// post-dominator reconvergence stack with opportunistic back-edge merging,
// extracted verbatim from the warp executor. Its metrics and per-PC
// profiles are byte-identical to the pre-refactor simulator.
type ipdomEngine struct {
	dp    *decodedProgram
	prof  *Profile
	stack []stackEntry
}

func newIPDOMEngine(dp *decodedProgram) *ipdomEngine {
	return &ipdomEngine{dp: dp, stack: make([]stackEntry, 0, 8)}
}

func (g *ipdomEngine) reset(prof *Profile, fullMask uint32) {
	g.prof = prof
	g.stack = append(g.stack[:0], stackEntry{pc: 0, rpc: -1, mask: fullMask})
}

func (g *ipdomEngine) next() (int, uint32, bool) {
	for len(g.stack) > 0 {
		e := &g.stack[len(g.stack)-1]
		if e.mask == 0 {
			g.stack = g.stack[:len(g.stack)-1]
			continue
		}
		if e.pc == e.rpc {
			// Reached the reconvergence point: merge into the continuation
			// entry waiting at this block (any entry with the same pc — the
			// mask invariant is that an entry's threads are exactly those
			// whose next block is pc, so same-pc merging is always sound).
			mask := e.mask
			pc := e.pc
			rpc := e.rpc
			g.stack = g.stack[:len(g.stack)-1]
			if g.prof != nil {
				g.prof.Counters[ProfReconvEvents][g.dp.blockStart[pc]]++
			}
			merged := false
			for i := len(g.stack) - 1; i >= 0; i-- {
				if g.stack[i].pc == pc {
					g.stack[i].mask |= mask
					merged = true
					break
				}
			}
			if !merged {
				// The continuation was already scheduled away (possible after
				// opportunistic back-edge merges); keep executing from here
				// with the reconvergence point cleared.
				outer := -1
				if len(g.stack) > 0 {
					outer = g.stack[len(g.stack)-1].rpc
				}
				if outer == rpc {
					outer = -1
				}
				g.stack = append(g.stack, stackEntry{pc: pc, rpc: outer, mask: mask})
			}
			continue
		}
		return e.pc, e.mask, true
	}
	return 0, 0, false
}

func (g *ipdomEngine) branch(blk int, brTaken, brNot uint32) {
	dp := g.dp
	end := dp.blockEnd[blk]
	term := &dp.instrs[end-1]
	rpc := dp.ipdom[blk]
	switch {
	case brNot == 0:
		g.jump(int(term.t0))
	case brTaken == 0:
		g.jump(int(term.t1))
	default:
		// Divergence: current entry becomes the continuation at the
		// reconvergence point (mask refilled as paths reconverge, or
		// both paths run to ret when rpc == -1); push both sides.
		if g.prof != nil {
			g.prof.Counters[ProfDivergeEvents][end-1]++
		}
		cont := g.stack[len(g.stack)-1]
		cont.pc = rpc
		cont.mask = 0
		g.stack[len(g.stack)-1] = cont
		g.stack = append(g.stack, stackEntry{pc: int(term.t1), rpc: rpc, mask: brNot})
		g.stack = append(g.stack, stackEntry{pc: int(term.t0), rpc: rpc, mask: brTaken})
	}
}

// jump retargets the current (top) entry to pc. Back edges (to an
// earlier block in the layout) are where Volta's scheduler
// opportunistically re-merges divergent threads whose PCs coincide: the
// entry merges with a sibling already waiting at that pc, or is parked
// below its siblings (but above its continuation) so they can catch up
// before the next trip runs.
func (g *ipdomEngine) jump(pc int) {
	cur := len(g.stack) - 1
	if pc >= g.stack[cur].pc { // forward edge: keep running
		g.stack[cur].pc = pc
		return
	}
	ent := g.stack[cur]
	ent.pc = pc
	g.stack = g.stack[:cur]
	// Merge with any entry already waiting at the same block — regardless
	// of its rpc: an entry's threads are exactly those whose next block is
	// its pc, so same-pc merging is sound, and the merged threads simply
	// pop wherever the entry later reconverges.
	for i := len(g.stack) - 1; i >= 0; i-- {
		if g.stack[i].pc == pc {
			g.stack[i].mask |= ent.mask
			if ent.rpc != g.stack[i].rpc {
				// Conservative: clear an ambiguous reconvergence point; the
				// entry then runs to another merge or ret.
				g.stack[i].rpc = -1
			}
			return
		}
	}
	// Park below the still-running siblings of this divergence (the
	// continuation entries waiting at their rpc stay put).
	ins := len(g.stack)
	for ins > 0 && g.stack[ins-1].pc != g.stack[ins-1].rpc && g.stack[ins-1].rpc == ent.rpc {
		ins--
	}
	g.stack = append(g.stack, stackEntry{})
	copy(g.stack[ins+1:], g.stack[ins:])
	g.stack[ins] = ent
}

func (g *ipdomEngine) retire(mask uint32) {
	// Retire the exited threads from the whole stack.
	for i := range g.stack {
		g.stack[i].mask &^= mask
	}
}
