package gpusim

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"uu/internal/interp"
	"uu/internal/ir"
)

// This file is the threaded-code execution backend (ExecThreaded). The
// decoded instruction array is compiled once per program into an array of
// closures — one specialized Go function per instruction — that operate on
// SoA register files: each register is WarpSize consecutive int64/float64
// lanes, so a full-warp arithmetic op is one contiguous 32-iteration loop
// the compiler keeps in machine registers, with no dispatch switch and no
// boxed interp.Value traffic. The warp loop fuses each basic block into a
// superinstruction: the divergence policy picks (block, mask), the block's
// closures run back to back, occupancy metrics and profile execution
// counters are accounted in bulk at block exit, and control returns to the
// policy only at the terminator.
//
// Byte-identity with the switch core is a hard invariant (the golden and
// differential tests pin it). Integer counters commute, so they may be
// bulk-added per block; the warp clock is float arithmetic and is NOT
// associative, so the timing scaffold below replays the switch core's
// exact per-instruction sequence — fetch charge, exposed dependency stall,
// issue, scoreboard update, memory cost — in the same order. Opcode
// semantics come from the same shared kernels (ops.go) the switch core
// uses; immediates are pooled into broadcast pseudo-registers past
// dp.numRegs so every closure reads plain register lanes.

// threadOp executes one compiled instruction for the active lanes and
// returns the memory bandwidth cycles it adds to the warp clock (0 for
// everything but ld/st, which is float-exact to add). Closures capture
// only decode-time constants; all run state lives on the warpSim.
type threadOp func(w *warpSim, active uint32) float64

// tTiming is the compact per-instruction record the timing scaffold reads
// instead of the full dInstr: issue cost, scoreboard sources (the original
// register operands — pooled immediates carry no dependency), destination,
// and latency class.
type tTiming struct {
	issue    float64
	srcs     [3]int32
	dst      int32
	latClass uint8
}

// tBlock is per-block metadata for bulk accounting.
type tBlock struct {
	// classThread counts the block's instructions per codegen.Class; the
	// per-block metrics add classThread[c] * activeLanes.
	classThread [5]int32
}

// threadedProgram is the compiled threaded-code form of a decoded program,
// cached on it and shared across warps, devices, and worker shards (the
// SoA lane stride is read from the warpSim at run time, so one compilation
// serves every warp size).
type threadedProgram struct {
	ops    []threadOp
	tim    []tTiming
	blocks []tBlock
	// numRegs is dp.numRegs plus the pooled immediates, which occupy the
	// pseudo-register indices [dp.numRegs, numRegs).
	numRegs int
	consts  []interp.Value
}

// constKey identifies a pooled immediate by exact bits: float keys go
// through Float64bits so -0.0 and 0.0 (map-equal, bit-distinct) do not
// alias one pool slot.
type constKey struct {
	i int64
	f uint64
}

type threadedCompiler struct {
	dp     *decodedProgram
	consts []interp.Value
	pool   map[constKey]int32
}

// constReg returns the pseudo-register broadcasting v to every lane.
func (c *threadedCompiler) constReg(v interp.Value) int32 {
	k := constKey{v.I, math.Float64bits(v.F)}
	if r, ok := c.pool[k]; ok {
		return r
	}
	r := int32(c.dp.numRegs + len(c.consts))
	c.consts = append(c.consts, v)
	c.pool[k] = r
	return r
}

// srcReg resolves operand i to an SoA register index: the instruction's
// register, a pooled immediate, or (past nSrcs) the zero constant the
// scalar kernels default absent operands to.
func (c *threadedCompiler) srcReg(in *dInstr, i int) int32 {
	if i >= int(in.nSrcs) {
		return c.constReg(interp.Value{})
	}
	if s := &in.srcs[i]; s.reg >= 0 {
		return s.reg
	}
	return c.constReg(in.srcs[i].imm)
}

func compileThreaded(dp *decodedProgram) *threadedProgram {
	c := &threadedCompiler{dp: dp, pool: map[constKey]int32{}}
	tp := &threadedProgram{
		ops:    make([]threadOp, len(dp.instrs)),
		tim:    make([]tTiming, len(dp.instrs)),
		blocks: make([]tBlock, len(dp.blockStart)),
	}
	for gi := range dp.instrs {
		in := &dp.instrs[gi]
		t := tTiming{issue: in.issue, dst: in.dst, latClass: in.latClass, srcs: [3]int32{-1, -1, -1}}
		for si := uint8(0); si < in.nSrcs; si++ {
			t.srcs[si] = in.srcs[si].reg
		}
		tp.tim[gi] = t
		tp.ops[gi] = c.compileOp(in, int32(gi))
	}
	for bi := range tp.blocks {
		blk := &tp.blocks[bi]
		for gi := dp.blockStart[bi]; gi < dp.blockEnd[bi]; gi++ {
			blk.classThread[dp.instrs[gi].class]++
		}
	}
	tp.numRegs = dp.numRegs + len(c.consts)
	tp.consts = c.consts
	return tp
}

// soaI returns register r's int lanes; soaF its float lanes.
func (w *warpSim) soaI(r int32) []int64 {
	base := int(r) * w.laneW
	return w.regsI[base : base+w.laneW]
}

func (w *warpSim) soaF(r int32) []float64 {
	base := int(r) * w.laneW
	return w.regsF[base : base+w.laneW]
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// compileOp builds the closure for one instruction. Control-flow ops
// record their outcome on the warpSim — including mid-block branches,
// which the switch core treats as delayed until the block ends — so the
// block loop's terminator hand-off reproduces runSwitch exactly.
func (c *threadedCompiler) compileOp(in *dInstr, gi int32) threadOp {
	switch in.exec {
	case xBra:
		t0 := int(in.t0)
		return func(w *warpSim, _ uint32) float64 {
			w.nextPC = t0
			return 0
		}
	case xRet:
		return func(w *warpSim, active uint32) float64 {
			w.exited = active
			w.nextPC = -1
			return 0
		}
	case xCondBra:
		r := c.srcReg(in, 0)
		return func(w *warpSim, active uint32) float64 {
			cond := w.soaI(r)
			var tk, nt uint32
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				if cond[l] != 0 {
					tk |= 1 << uint(l)
				} else {
					nt |= 1 << uint(l)
				}
			}
			w.brTaken |= tk
			w.brNot |= nt
			w.branched = true
			return 0
		}
	case xBar:
		// No-op under sequential warp scheduling; the timing scaffold
		// still charges its fetch and issue.
		return nil
	case xLd:
		return c.compileLoad(in, gi)
	case xSt:
		return c.compileStore(in, gi)
	case xTID:
		dst := in.dst
		return func(w *warpSim, active uint32) float64 {
			d := w.soaI(dst)
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				d[l] = int64(w.lanesTID[l])
			}
			return 0
		}
	case xCTAID:
		dst := in.dst
		return func(w *warpSim, active uint32) float64 {
			d := w.soaI(dst)
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				d[l] = int64(w.lanesCTA[l])
			}
			return 0
		}
	case xNTID:
		dst := in.dst
		return func(w *warpSim, active uint32) float64 {
			d := w.soaI(dst)
			v := w.ntidV
			for rem := active; rem != 0; rem &= rem - 1 {
				d[bits.TrailingZeros32(rem)] = v
			}
			return 0
		}
	case xNCTAID:
		dst := in.dst
		return func(w *warpSim, active uint32) float64 {
			d := w.soaI(dst)
			v := w.nctaidV
			for rem := active; rem != 0; rem &= rem - 1 {
				d[bits.TrailingZeros32(rem)] = v
			}
			return 0
		}
	case xMov:
		dst, s := in.dst, c.srcReg(in, 0)
		return func(w *warpSim, active uint32) float64 {
			dI, aI := w.soaI(dst), w.soaI(s)
			dF, aF := w.soaF(dst), w.soaF(s)
			if active == w.runMask {
				n := w.nLanes
				copy(dI[:n], aI[:n])
				copy(dF[:n], aF[:n])
				return 0
			}
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				dI[l] = aI[l]
				dF[l] = aF[l]
			}
			return 0
		}
	case xSelp:
		dst := in.dst
		cr, s1, s2 := c.srcReg(in, 0), c.srcReg(in, 1), c.srcReg(in, 2)
		return func(w *warpSim, active uint32) float64 {
			cond := w.soaI(cr)
			aI, bI, dI := w.soaI(s1), w.soaI(s2), w.soaI(dst)
			aF, bF, dF := w.soaF(s1), w.soaF(s2), w.soaF(dst)
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				if cond[l] != 0 {
					dI[l], dF[l] = aI[l], aF[l]
				} else {
					dI[l], dF[l] = bI[l], bF[l]
				}
			}
			return 0
		}
	case xSetpI:
		return c.compileSetpI(in)
	case xSetpF:
		dst, r0, r1 := in.dst, c.srcReg(in, 0), c.srcReg(in, 1)
		pred := in.pred
		return func(w *warpSim, active uint32) float64 {
			a, b, d := w.soaF(r0), w.soaF(r1), w.soaI(dst)
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				d[l] = b2i(evalFCmp(pred, a[l], b[l]))
			}
			return 0
		}
	case xSExt:
		dst, s := in.dst, c.srcReg(in, 0)
		return func(w *warpSim, active uint32) float64 {
			d, a := w.soaI(dst), w.soaI(s)
			if active == w.runMask {
				copy(d[:w.nLanes], a[:w.nLanes])
				return 0
			}
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				d[l] = a[l]
			}
			return 0
		}
	case xTrunc:
		dst, s, tr := in.dst, c.srcReg(in, 0), in.trunc
		return func(w *warpSim, active uint32) float64 {
			d, a := w.soaI(dst), w.soaI(s)
			if active == w.runMask {
				n := w.nLanes
				d, a := d[:n], a[:n]
				for l := range d {
					d[l] = truncTag(tr, a[l])
				}
				return 0
			}
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				d[l] = truncTag(tr, a[l])
			}
			return 0
		}
	case xZExt:
		dst, s, aux := in.dst, c.srcReg(in, 0), in.aux
		return func(w *warpSim, active uint32) float64 {
			d, a := w.soaI(dst), w.soaI(s)
			if active == w.runMask {
				n := w.nLanes
				d, a := d[:n], a[:n]
				for l := range d {
					d[l] = int64(uint64(a[l]) & aux)
				}
				return 0
			}
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				d[l] = int64(uint64(a[l]) & aux)
			}
			return 0
		}
	case xSIToFP:
		dst, s, rnd := in.dst, c.srcReg(in, 0), in.rndF32
		return func(w *warpSim, active uint32) float64 {
			d, a := w.soaF(dst), w.soaI(s)
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				v := float64(a[l])
				if rnd {
					v = float64(float32(v))
				}
				d[l] = v
			}
			return 0
		}
	case xFPToSI:
		dst, s, tr := in.dst, c.srcReg(in, 0), in.trunc
		return func(w *warpSim, active uint32) float64 {
			d, a := w.soaI(dst), w.soaF(s)
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				d[l] = evalConvI(xFPToSI, tr, 0, 0, a[l])
			}
			return 0
		}
	case xFPExt, xFPTrunc:
		dst, s, rnd := in.dst, c.srcReg(in, 0), in.rndF32
		return func(w *warpSim, active uint32) float64 {
			d, a := w.soaF(dst), w.soaF(s)
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				v := a[l]
				if rnd {
					v = float64(float32(v))
				}
				d[l] = v
			}
			return 0
		}
	}
	if in.exec >= xFAdd { // tag order: float compute ops are the last group
		return c.compileFloatOp(in)
	}
	return c.compileIntOp(in)
}

// compileSetpI specializes the signed/equality predicates (the loop guards
// and if-conditions that dominate generated code); unsigned compares fall
// back to the shared kernel per lane.
func (c *threadedCompiler) compileSetpI(in *dInstr) threadOp {
	dst, r0, r1 := in.dst, c.srcReg(in, 0), c.srcReg(in, 1)
	pred, aux := in.pred, in.aux
	switch pred {
	case ir.EQ:
		return func(w *warpSim, active uint32) float64 {
			a, b, d := w.soaI(r0), w.soaI(r1), w.soaI(dst)
			if active == w.runMask {
				n := w.nLanes
				a, b, d := a[:n], b[:n], d[:n]
				for l := range d {
					d[l] = b2i(a[l] == b[l])
				}
				return 0
			}
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				d[l] = b2i(a[l] == b[l])
			}
			return 0
		}
	case ir.NE:
		return func(w *warpSim, active uint32) float64 {
			a, b, d := w.soaI(r0), w.soaI(r1), w.soaI(dst)
			if active == w.runMask {
				n := w.nLanes
				a, b, d := a[:n], b[:n], d[:n]
				for l := range d {
					d[l] = b2i(a[l] != b[l])
				}
				return 0
			}
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				d[l] = b2i(a[l] != b[l])
			}
			return 0
		}
	case ir.SLT:
		return func(w *warpSim, active uint32) float64 {
			a, b, d := w.soaI(r0), w.soaI(r1), w.soaI(dst)
			if active == w.runMask {
				n := w.nLanes
				a, b, d := a[:n], b[:n], d[:n]
				for l := range d {
					d[l] = b2i(a[l] < b[l])
				}
				return 0
			}
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				d[l] = b2i(a[l] < b[l])
			}
			return 0
		}
	case ir.SLE:
		return func(w *warpSim, active uint32) float64 {
			a, b, d := w.soaI(r0), w.soaI(r1), w.soaI(dst)
			if active == w.runMask {
				n := w.nLanes
				a, b, d := a[:n], b[:n], d[:n]
				for l := range d {
					d[l] = b2i(a[l] <= b[l])
				}
				return 0
			}
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				d[l] = b2i(a[l] <= b[l])
			}
			return 0
		}
	case ir.SGT:
		return func(w *warpSim, active uint32) float64 {
			a, b, d := w.soaI(r0), w.soaI(r1), w.soaI(dst)
			if active == w.runMask {
				n := w.nLanes
				a, b, d := a[:n], b[:n], d[:n]
				for l := range d {
					d[l] = b2i(a[l] > b[l])
				}
				return 0
			}
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				d[l] = b2i(a[l] > b[l])
			}
			return 0
		}
	case ir.SGE:
		return func(w *warpSim, active uint32) float64 {
			a, b, d := w.soaI(r0), w.soaI(r1), w.soaI(dst)
			if active == w.runMask {
				n := w.nLanes
				a, b, d := a[:n], b[:n], d[:n]
				for l := range d {
					d[l] = b2i(a[l] >= b[l])
				}
				return 0
			}
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				d[l] = b2i(a[l] >= b[l])
			}
			return 0
		}
	}
	return func(w *warpSim, active uint32) float64 {
		a, b, d := w.soaI(r0), w.soaI(r1), w.soaI(dst)
		for rem := active; rem != 0; rem &= rem - 1 {
			l := bits.TrailingZeros32(rem)
			d[l] = b2i(evalICmp(pred, aux, a[l], b[l]))
		}
		return 0
	}
}

// compileIntOp specializes the single-cycle integer ops; div/rem (which
// pay a 24-cycle latency anyway) share the generic kernel loop.
func (c *threadedCompiler) compileIntOp(in *dInstr) threadOp {
	dst, r0, r1 := in.dst, c.srcReg(in, 0), c.srcReg(in, 1)
	op, tr, aux := in.exec, in.trunc, in.aux
	// Full-width i64 arithmetic (the overwhelmingly common case after
	// lowering) needs no result truncation; specialize the hottest ops so
	// their inner loops carry no per-lane tag dispatch.
	if tr == tNone {
		switch op {
		case xAdd:
			return func(w *warpSim, active uint32) float64 {
				a, b, d := w.soaI(r0), w.soaI(r1), w.soaI(dst)
				if active == w.runMask {
					n := w.nLanes
					a, b, d := a[:n], b[:n], d[:n]
					for l := range d {
						d[l] = a[l] + b[l]
					}
					return 0
				}
				for rem := active; rem != 0; rem &= rem - 1 {
					l := bits.TrailingZeros32(rem)
					d[l] = a[l] + b[l]
				}
				return 0
			}
		case xSub:
			return func(w *warpSim, active uint32) float64 {
				a, b, d := w.soaI(r0), w.soaI(r1), w.soaI(dst)
				if active == w.runMask {
					n := w.nLanes
					a, b, d := a[:n], b[:n], d[:n]
					for l := range d {
						d[l] = a[l] - b[l]
					}
					return 0
				}
				for rem := active; rem != 0; rem &= rem - 1 {
					l := bits.TrailingZeros32(rem)
					d[l] = a[l] - b[l]
				}
				return 0
			}
		case xMul:
			return func(w *warpSim, active uint32) float64 {
				a, b, d := w.soaI(r0), w.soaI(r1), w.soaI(dst)
				if active == w.runMask {
					n := w.nLanes
					a, b, d := a[:n], b[:n], d[:n]
					for l := range d {
						d[l] = a[l] * b[l]
					}
					return 0
				}
				for rem := active; rem != 0; rem &= rem - 1 {
					l := bits.TrailingZeros32(rem)
					d[l] = a[l] * b[l]
				}
				return 0
			}
		case xAnd:
			return func(w *warpSim, active uint32) float64 {
				a, b, d := w.soaI(r0), w.soaI(r1), w.soaI(dst)
				if active == w.runMask {
					n := w.nLanes
					a, b, d := a[:n], b[:n], d[:n]
					for l := range d {
						d[l] = a[l] & b[l]
					}
					return 0
				}
				for rem := active; rem != 0; rem &= rem - 1 {
					l := bits.TrailingZeros32(rem)
					d[l] = a[l] & b[l]
				}
				return 0
			}
		case xOr:
			return func(w *warpSim, active uint32) float64 {
				a, b, d := w.soaI(r0), w.soaI(r1), w.soaI(dst)
				if active == w.runMask {
					n := w.nLanes
					a, b, d := a[:n], b[:n], d[:n]
					for l := range d {
						d[l] = a[l] | b[l]
					}
					return 0
				}
				for rem := active; rem != 0; rem &= rem - 1 {
					l := bits.TrailingZeros32(rem)
					d[l] = a[l] | b[l]
				}
				return 0
			}
		case xXor:
			return func(w *warpSim, active uint32) float64 {
				a, b, d := w.soaI(r0), w.soaI(r1), w.soaI(dst)
				if active == w.runMask {
					n := w.nLanes
					a, b, d := a[:n], b[:n], d[:n]
					for l := range d {
						d[l] = a[l] ^ b[l]
					}
					return 0
				}
				for rem := active; rem != 0; rem &= rem - 1 {
					l := bits.TrailingZeros32(rem)
					d[l] = a[l] ^ b[l]
				}
				return 0
			}
		}
	}
	switch op {
	case xAdd:
		return func(w *warpSim, active uint32) float64 {
			a, b, d := w.soaI(r0), w.soaI(r1), w.soaI(dst)
			if active == w.runMask {
				n := w.nLanes
				a, b, d := a[:n], b[:n], d[:n]
				for l := range d {
					d[l] = truncTag(tr, a[l]+b[l])
				}
				return 0
			}
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				d[l] = truncTag(tr, a[l]+b[l])
			}
			return 0
		}
	case xSub:
		return func(w *warpSim, active uint32) float64 {
			a, b, d := w.soaI(r0), w.soaI(r1), w.soaI(dst)
			if active == w.runMask {
				n := w.nLanes
				a, b, d := a[:n], b[:n], d[:n]
				for l := range d {
					d[l] = truncTag(tr, a[l]-b[l])
				}
				return 0
			}
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				d[l] = truncTag(tr, a[l]-b[l])
			}
			return 0
		}
	case xMul:
		return func(w *warpSim, active uint32) float64 {
			a, b, d := w.soaI(r0), w.soaI(r1), w.soaI(dst)
			if active == w.runMask {
				n := w.nLanes
				a, b, d := a[:n], b[:n], d[:n]
				for l := range d {
					d[l] = truncTag(tr, a[l]*b[l])
				}
				return 0
			}
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				d[l] = truncTag(tr, a[l]*b[l])
			}
			return 0
		}
	case xAnd:
		return func(w *warpSim, active uint32) float64 {
			a, b, d := w.soaI(r0), w.soaI(r1), w.soaI(dst)
			if active == w.runMask {
				n := w.nLanes
				a, b, d := a[:n], b[:n], d[:n]
				for l := range d {
					d[l] = truncTag(tr, a[l]&b[l])
				}
				return 0
			}
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				d[l] = truncTag(tr, a[l]&b[l])
			}
			return 0
		}
	case xOr:
		return func(w *warpSim, active uint32) float64 {
			a, b, d := w.soaI(r0), w.soaI(r1), w.soaI(dst)
			if active == w.runMask {
				n := w.nLanes
				a, b, d := a[:n], b[:n], d[:n]
				for l := range d {
					d[l] = truncTag(tr, a[l]|b[l])
				}
				return 0
			}
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				d[l] = truncTag(tr, a[l]|b[l])
			}
			return 0
		}
	case xXor:
		return func(w *warpSim, active uint32) float64 {
			a, b, d := w.soaI(r0), w.soaI(r1), w.soaI(dst)
			if active == w.runMask {
				n := w.nLanes
				a, b, d := a[:n], b[:n], d[:n]
				for l := range d {
					d[l] = truncTag(tr, a[l]^b[l])
				}
				return 0
			}
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				d[l] = truncTag(tr, a[l]^b[l])
			}
			return 0
		}
	case xShl:
		return func(w *warpSim, active uint32) float64 {
			a, b, d := w.soaI(r0), w.soaI(r1), w.soaI(dst)
			if active == w.runMask {
				n := w.nLanes
				a, b, d := a[:n], b[:n], d[:n]
				for l := range d {
					d[l] = truncTag(tr, a[l]<<(uint64(b[l])&aux))
				}
				return 0
			}
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				d[l] = truncTag(tr, a[l]<<(uint64(b[l])&aux))
			}
			return 0
		}
	case xAShr:
		return func(w *warpSim, active uint32) float64 {
			a, b, d := w.soaI(r0), w.soaI(r1), w.soaI(dst)
			if active == w.runMask {
				n := w.nLanes
				a, b, d := a[:n], b[:n], d[:n]
				for l := range d {
					d[l] = truncTag(tr, a[l]>>(uint64(b[l])&aux))
				}
				return 0
			}
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				d[l] = truncTag(tr, a[l]>>(uint64(b[l])&aux))
			}
			return 0
		}
	case xLShr:
		return func(w *warpSim, active uint32) float64 {
			a, b, d := w.soaI(r0), w.soaI(r1), w.soaI(dst)
			if active == w.runMask {
				n := w.nLanes
				a, b, d := a[:n], b[:n], d[:n]
				for l := range d {
					d[l] = truncTag(tr, int64(toUTag(tr, a[l])>>(uint64(b[l])&aux)))
				}
				return 0
			}
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				d[l] = truncTag(tr, int64(toUTag(tr, a[l])>>(uint64(b[l])&aux)))
			}
			return 0
		}
	case xSMin:
		return func(w *warpSim, active uint32) float64 {
			a, b, d := w.soaI(r0), w.soaI(r1), w.soaI(dst)
			if active == w.runMask {
				n := w.nLanes
				a, b, d := a[:n], b[:n], d[:n]
				for l := range d {
					d[l] = truncTag(tr, min(a[l], b[l]))
				}
				return 0
			}
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				d[l] = truncTag(tr, min(a[l], b[l]))
			}
			return 0
		}
	case xSMax:
		return func(w *warpSim, active uint32) float64 {
			a, b, d := w.soaI(r0), w.soaI(r1), w.soaI(dst)
			if active == w.runMask {
				n := w.nLanes
				a, b, d := a[:n], b[:n], d[:n]
				for l := range d {
					d[l] = truncTag(tr, max(a[l], b[l]))
				}
				return 0
			}
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				d[l] = truncTag(tr, max(a[l], b[l]))
			}
			return 0
		}
	}
	return func(w *warpSim, active uint32) float64 {
		a, b, d := w.soaI(r0), w.soaI(r1), w.soaI(dst)
		for rem := active; rem != 0; rem &= rem - 1 {
			l := bits.TrailingZeros32(rem)
			d[l] = evalIntOp(op, tr, aux, a[l], b[l])
		}
		return 0
	}
}

// compileFloatOp specializes the pipelined float ops; transcendentals
// (dominated by the math call) share the generic kernel loop.
func (c *threadedCompiler) compileFloatOp(in *dInstr) threadOp {
	dst, r0, r1 := in.dst, c.srcReg(in, 0), c.srcReg(in, 1)
	op, rnd := in.exec, in.rndF32
	switch op {
	case xFAdd:
		return func(w *warpSim, active uint32) float64 {
			a, b, d := w.soaF(r0), w.soaF(r1), w.soaF(dst)
			if active == w.runMask {
				n := w.nLanes
				a, b, d := a[:n], b[:n], d[:n]
				if rnd {
					for l := range d {
						d[l] = float64(float32(a[l] + b[l]))
					}
				} else {
					for l := range d {
						d[l] = a[l] + b[l]
					}
				}
				return 0
			}
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				r := a[l] + b[l]
				if rnd {
					r = float64(float32(r))
				}
				d[l] = r
			}
			return 0
		}
	case xFSub:
		return func(w *warpSim, active uint32) float64 {
			a, b, d := w.soaF(r0), w.soaF(r1), w.soaF(dst)
			if active == w.runMask {
				n := w.nLanes
				a, b, d := a[:n], b[:n], d[:n]
				if rnd {
					for l := range d {
						d[l] = float64(float32(a[l] - b[l]))
					}
				} else {
					for l := range d {
						d[l] = a[l] - b[l]
					}
				}
				return 0
			}
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				r := a[l] - b[l]
				if rnd {
					r = float64(float32(r))
				}
				d[l] = r
			}
			return 0
		}
	case xFMul:
		return func(w *warpSim, active uint32) float64 {
			a, b, d := w.soaF(r0), w.soaF(r1), w.soaF(dst)
			if active == w.runMask {
				n := w.nLanes
				a, b, d := a[:n], b[:n], d[:n]
				if rnd {
					for l := range d {
						d[l] = float64(float32(a[l] * b[l]))
					}
				} else {
					for l := range d {
						d[l] = a[l] * b[l]
					}
				}
				return 0
			}
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				r := a[l] * b[l]
				if rnd {
					r = float64(float32(r))
				}
				d[l] = r
			}
			return 0
		}
	case xFDiv:
		return func(w *warpSim, active uint32) float64 {
			a, b, d := w.soaF(r0), w.soaF(r1), w.soaF(dst)
			if active == w.runMask {
				n := w.nLanes
				a, b, d := a[:n], b[:n], d[:n]
				if rnd {
					for l := range d {
						d[l] = float64(float32(a[l] / b[l]))
					}
				} else {
					for l := range d {
						d[l] = a[l] / b[l]
					}
				}
				return 0
			}
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				r := a[l] / b[l]
				if rnd {
					r = float64(float32(r))
				}
				d[l] = r
			}
			return 0
		}
	}
	return func(w *warpSim, active uint32) float64 {
		a, b, d := w.soaF(r0), w.soaF(r1), w.soaF(dst)
		for rem := active; rem != 0; rem &= rem - 1 {
			l := bits.TrailingZeros32(rem)
			d[l] = evalFloatOp(op, rnd, a[l], b[l])
		}
		return 0
	}
}

// gatherAddrsSoA is gatherAddrs over the SoA integer file (the operand is
// always a register here — immediates are pooled).
func (w *warpSim) gatherAddrsSoA(active uint32, r int32) int {
	a := w.soaI(r)
	if active == w.runMask {
		n := w.nLanes
		copy(w.addrBuf[:n], a[:n])
		return n
	}
	n := 0
	for rem := active; rem != 0; rem &= rem - 1 {
		w.addrBuf[n] = a[bits.TrailingZeros32(rem)]
		n++
	}
	return n
}

// loadFault records the out-of-bounds error the typed Load path reports
// for this address; the block loop surfaces it after the closure returns.
func (w *warpSim) loadFault(typ *ir.Type, addr int64) {
	if _, err := w.mem.Load(typ, addr); err != nil {
		w.memErr = err
	} else {
		w.memErr = fmt.Errorf("interp: load of unsupported kind at addr=%d", addr)
	}
}

func (w *warpSim) storeFault(typ *ir.Type, addr int64, v interp.Value) {
	if err := w.mem.Store(typ, addr, v); err != nil {
		w.memErr = err
	} else {
		w.memErr = fmt.Errorf("interp: store of unsupported kind at addr=%d", addr)
	}
}

func (c *threadedCompiler) compileLoad(in *dInstr, gi int32) threadOp {
	addr := c.srcReg(in, 0)
	dst := in.dst
	kind := ir.Kind(in.memKind)
	size := in.memSize
	typ := in.typ
	return func(w *warpSim, active uint32) float64 {
		n := w.gatherAddrsSoA(active, addr)
		if w.rSet != nil {
			lo, hi := addrRange(w.addrBuf[:n], size)
			w.rSet.add(lo, hi)
		}
		cost, ntx := w.access(n, size, true, w.m)
		if w.prof != nil {
			w.prof.Counters[ProfMemTransactions][gi] += ntx
			w.prof.Counters[ProfMemIdeal][gi] += idealTransactions(n, size, w.cfg.SegmentBytes)
		}
		ai := 0
		switch kind {
		case ir.KindF64:
			data := w.mem.Data
			d := w.soaF(dst)
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				a := w.addrBuf[ai]
				ai++
				if a < 0 || a+8 > int64(len(data)) {
					w.loadFault(typ, a)
					return cost
				}
				d[l] = math.Float64frombits(binary.LittleEndian.Uint64(data[a:]))
			}
		case ir.KindI64, ir.KindPtr:
			data := w.mem.Data
			d := w.soaI(dst)
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				a := w.addrBuf[ai]
				ai++
				if a < 0 || a+8 > int64(len(data)) {
					w.loadFault(typ, a)
					return cost
				}
				d[l] = int64(binary.LittleEndian.Uint64(data[a:]))
			}
		default:
			dI, dF := w.soaI(dst), w.soaF(dst)
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				a := w.addrBuf[ai]
				ai++
				v, ok := w.mem.LoadKind(kind, size, a)
				if !ok {
					w.loadFault(typ, a)
					return cost
				}
				dI[l], dF[l] = v.I, v.F
			}
		}
		return cost
	}
}

func (c *threadedCompiler) compileStore(in *dInstr, gi int32) threadOp {
	val := c.srcReg(in, 0)
	addr := c.srcReg(in, 1)
	kind := ir.Kind(in.memKind)
	size := in.memSize
	typ := in.typ
	return func(w *warpSim, active uint32) float64 {
		n := w.gatherAddrsSoA(active, addr)
		if w.wSet != nil {
			lo, hi := addrRange(w.addrBuf[:n], size)
			w.wSet.add(lo, hi)
		}
		cost, ntx := w.access(n, size, false, w.m)
		if w.prof != nil {
			w.prof.Counters[ProfMemTransactions][gi] += ntx
			w.prof.Counters[ProfMemIdeal][gi] += idealTransactions(n, size, w.cfg.SegmentBytes)
		}
		ai := 0
		if kind == ir.KindF64 && w.writeLog == nil {
			data := w.mem.Data
			v := w.soaF(val)
			for rem := active; rem != 0; rem &= rem - 1 {
				l := bits.TrailingZeros32(rem)
				a := w.addrBuf[ai]
				ai++
				if a < 0 || a+8 > int64(len(data)) {
					w.storeFault(typ, a, interp.FloatVal(v[l]))
					return cost
				}
				binary.LittleEndian.PutUint64(data[a:], math.Float64bits(v[l]))
			}
			return cost
		}
		vI, vF := w.soaI(val), w.soaF(val)
		for rem := active; rem != 0; rem &= rem - 1 {
			l := bits.TrailingZeros32(rem)
			a := w.addrBuf[ai]
			ai++
			v := interp.Value{I: vI[l], F: vF[l]}
			if !w.mem.StoreKind(kind, size, a, v) {
				w.storeFault(typ, a, v)
				return cost
			}
			if w.writeLog != nil {
				*w.writeLog = append(*w.writeLog, memWrite{addr: a, val: v, size: int32(size), kind: uint8(kind)})
			}
		}
		return cost
	}
}

// runThreaded executes one warp on the threaded-code backend. The timing
// scaffold replays runSwitch's per-instruction float sequence exactly;
// only the commutative integer counters are accounted in bulk per block.
func (w *warpSim) runThreaded(args []interp.Value, launch Launch, firstThread, count int, m *Metrics) error {
	cfg := w.cfg
	dp := w.dp
	tp := w.tp
	W := w.laneW
	prof := w.prof
	// Reset the real registers (the pooled immediates above them are
	// filled once at construction and never written).
	clearI := w.regsI[:dp.numRegs*W]
	for i := range clearI {
		clearI[i] = 0
	}
	clearF := w.regsF[:dp.numRegs*W]
	for i := range clearF {
		clearF[i] = 0
	}
	for pi, r := range dp.paramRegs {
		base := int(r) * W
		v := args[pi]
		for lane := 0; lane < count; lane++ {
			w.regsI[base+lane] = v.I
			w.regsF[base+lane] = v.F
		}
	}
	for lane := 0; lane < count; lane++ {
		gid := firstThread + lane
		w.lanesTID[lane] = int32(gid % launch.BlockDim)
		w.lanesCTA[lane] = int32(gid / launch.BlockDim)
	}
	for i := range w.ready {
		w.ready[i] = 0
	}
	// As in runSwitch: 32 is the mask word width, not the warp size.
	fullMask := ^uint32(0)
	if count < 32 {
		fullMask = 1<<uint(count) - 1
	}
	w.runMask = fullMask
	w.nLanes = count
	w.ntidV = int64(launch.BlockDim)
	w.nctaidV = int64(launch.GridDim)
	w.m = m
	w.memErr = nil

	eng := w.eng
	eng.reset(prof, fullMask)
	var steps int64
	budget := cfg.MaxWarpSteps
	if budget <= 0 {
		budget = MaxWarpSteps
	}
	var cycles float64   // warp issue clock
	var stallAcc float64 // exposed dependency stalls (metrics only)
	ops, tim := tp.ops, tp.tim
	ready := w.ready
	lines := w.lines
	blockSeen := w.blockSeen
	for {
		blkIdx, active, ok := eng.next()
		if !ok {
			break
		}
		if w.canceled() {
			return w.cancelErr(steps)
		}
		start, end := dp.blockStart[blkIdx], dp.blockEnd[blkIdx]
		nActive := bits.OnesCount32(active)
		iss := w.scale[nActive]
		w.nextPC = -2
		w.branched = false
		w.exited, w.brTaken, w.brNot = 0, 0, 0
		nb := int64(end - start)
		if prof == nil && blockSeen[blkIdx] && steps+nb <= budget {
			// Steady-state fast loop. Every line of this block is already
			// resident (bitset mode never evicts), the step budget cannot
			// trip mid-block, and there is no profile to feed — so the
			// fetch, budget, and profile branches of the full loop below
			// all provably no-op and the warp clock advances through the
			// identical float sequence with none of them in the way.
			steps += nb
			for gi := start; gi < end; gi++ {
				t := &tim[gi]
				dep := 0.0
				for _, r := range t.srcs {
					if r >= 0 {
						if rt := ready[r]; rt > dep {
							dep = rt
						}
					}
				}
				if stall := dep - cycles; stall > 0 {
					exposed := stall * cfg.StallExposure * iss
					cycles += exposed
					stallAcc += exposed
				}
				cycles += t.issue * iss
				if t.dst >= 0 {
					ready[t.dst] = cycles + w.latTab[t.latClass]
				}
				if fn := ops[gi]; fn != nil {
					cycles += fn(w, active)
					if w.memErr != nil {
						return fmt.Errorf("gpusim: %s: %w", dp.name, w.memErr)
					}
				}
			}
		} else {
			for gi := start; gi < end; gi++ {
				steps++
				if steps > budget {
					return fmt.Errorf("gpusim: %s after %d steps: %w", dp.name, steps-1, ErrCycleBudget)
				}
				var fc int64
				if line := lines[gi]; w.fetchMode == fetchBitset {
					word, bit := line>>6, uint64(1)<<uint(line&63)
					if w.touched[word]&bit == 0 {
						w.touched[word] |= bit
						fc = cfg.ICacheMissCycles
					}
				} else {
					fc = w.fetchStallSlow(line)
				}
				if fc != 0 {
					m.StallInstFetch += fc
					cycles += float64(fc)
					if prof != nil {
						prof.Counters[ProfFetchStall][gi] += fc
					}
				}
				t := &tim[gi]
				dep := 0.0
				for _, r := range t.srcs {
					if r >= 0 {
						if rt := ready[r]; rt > dep {
							dep = rt
						}
					}
				}
				if stall := dep - cycles; stall > 0 {
					exposed := stall * cfg.StallExposure * iss
					cycles += exposed
					stallAcc += exposed
					if prof != nil {
						prof.Counters[ProfDepStall][gi] += profFP(exposed)
					}
				}
				cycles += t.issue * iss
				if prof != nil {
					prof.Counters[ProfIssueCycles][gi] += profFP(t.issue * iss)
				}
				if t.dst >= 0 {
					ready[t.dst] = cycles + w.latTab[t.latClass]
				}
				if fn := ops[gi]; fn != nil {
					cycles += fn(w, active)
					if w.memErr != nil {
						return fmt.Errorf("gpusim: %s: %w", dp.name, w.memErr)
					}
				}
			}
			if w.fetchMode == fetchBitset {
				blockSeen[blkIdx] = true
			}
		}
		// Bulk block accounting: these counters are integers, so the
		// per-block sums equal the switch core's per-instruction sums
		// exactly.
		m.WarpInstrs += nb
		m.ActiveSum += nb * int64(nActive)
		m.ThreadInstrs += nb * int64(nActive)
		for cl, k := range &tp.blocks[blkIdx].classThread {
			if k != 0 {
				m.ClassThread[cl] += int64(k) * int64(nActive)
			}
		}
		if prof != nil {
			we := prof.Counters[ProfWarpExecs]
			te := prof.Counters[ProfThreadExecs]
			na := int64(nActive)
			for gi := start; gi < end; gi++ {
				we[gi]++
				te[gi] += na
			}
		}
		switch {
		case w.nextPC == -1: // ret
			eng.retire(w.exited)
		case w.branched:
			eng.branch(blkIdx, w.brTaken, w.brNot)
		default:
			eng.jump(w.nextPC)
		}
	}
	m.Cycles += int64(cycles + 0.5)
	m.DepStallCycles += int64(stallAcc + 0.5)
	return nil
}
