package gpusim

import (
	"testing"

	"uu/internal/codegen"
	"uu/internal/interp"
	"uu/internal/irparse"
)

// TestZExtI8MatchesInterpreter pins the zext semantics that SrcType
// enables: an i8 register holds its value sign-extended (load i8 of 0xFF
// is -1), and zext to i64 must zero-extend through the *source* width,
// producing 255. The retired heuristic — treat anything outside {0, 1} as
// already zero-extended — returned -1 here.
func TestZExtI8MatchesInterpreter(t *testing.T) {
	src := `
func @k(i8* noalias %p, i64* noalias %q) {
entry:
  %t = tid
  %i = sext i32 %t to i64
  %pp = gep i8* %p, i64 %i
  %v = load i8* %pp
  %z = zext i8 %v to i64
  %pq = gep i64* %q, i64 %i
  store i64 %z, i64* %pq
  ret
}
`
	f, err := irparse.ParseFunc(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	const n = 32
	refMem := interp.NewMemory(n + 8*n)
	simMem := interp.NewMemory(n + 8*n)
	for i := int64(0); i < n; i++ {
		// Cover the full signed byte range including 0xFF and 0x80.
		b := byte(i*8 + 255 - i)
		refMem.Data[i] = b
		simMem.Data[i] = b
	}
	args := []interp.Value{interp.IntVal(0), interp.IntVal(n)}
	for tid := 0; tid < n; tid++ {
		env := interp.Env{TID: int32(tid), NTID: n, CTAID: 0, NCTAID: 1}
		if _, err := interp.Run(f, args, refMem, env); err != nil {
			t.Fatalf("interp: %v", err)
		}
	}

	p, err := codegen.Lower(f)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	if _, err := Run(p, args, simMem, Launch{GridDim: 1, BlockDim: n}, V100()); err != nil {
		t.Fatalf("sim: %v", err)
	}
	for i := int64(0); i < n; i++ {
		ref, sim := refMem.I64(n, i), simMem.I64(n, i)
		if ref != sim {
			t.Fatalf("q[%d]: interp=%d sim=%d", i, ref, sim)
		}
		if want := int64(refMem.Data[i]); ref != want {
			t.Fatalf("q[%d]: interp=%d, want zero-extended %d", i, ref, want)
		}
	}
}
