package gpusim

import (
	"bytes"
	"reflect"
	"testing"

	"uu/internal/codegen"
	"uu/internal/harden"
	"uu/internal/interp"
	"uu/internal/ir"
	"uu/internal/pipeline"
)

// policyDivSrc has a data-dependent branch nested in a divergent-trip
// loop: the regime where the three backends schedule genuinely different
// interleavings while computing the same values.
const policyDivSrc = `
kernel d(double* restrict x, long n) {
  long i = (long)global_id();
  if (i < n) {
    double v = x[i];
    long m = i % 5;
    for (long j = 0; j < m; j = j + 1) {
      if ((i + j) % 3 == 0) {
        v = v * 1.5 + 1.0;
      } else {
        v = v - 0.25;
      }
    }
    x[i] = v;
  }
}
`

// policyDevices are the device configurations the policy tests sweep:
// every backend on identical V100 hardware (isolating the divergence
// axis), plus the native 16-wide Vortex device (exercising narrow-warp
// masking).
func policyDevices() []struct {
	name string
	cfg  DeviceConfig
} {
	withPolicy := func(p PolicyKind) DeviceConfig {
		cfg := V100()
		cfg.Policy = p
		return cfg
	}
	return []struct {
		name string
		cfg  DeviceConfig
	}{
		{"ipdom", withPolicy(PolicyIPDOM)},
		{"minsppc", withPolicy(PolicyMinSPPC)},
		{"vortex", withPolicy(PolicyVortex)},
		{"vortex_native", Vortex()},
	}
}

// TestPolicyWorkersDeterminism extends the scheduler's central contract to
// every divergence backend: metrics, final memory, and per-PC profiles are
// byte-identical for any worker count.
func TestPolicyWorkersDeterminism(t *testing.T) {
	p := build(t, policyDivSrc, pipeline.Options{Config: pipeline.Baseline})
	launch := Launch{GridDim: 3, BlockDim: 40} // partial final warp
	n := int64(launch.Threads())
	args := []interp.Value{interp.IntVal(0), interp.IntVal(n)}

	for _, dev := range policyDevices() {
		t.Run(dev.name, func(t *testing.T) {
			var refM *Metrics
			var refMem []byte
			var refProf *Profile
			for _, workers := range []int{1, 2, 4, 8} {
				mem := interp.NewMemory(1 << 14)
				for i := int64(0); i < n; i++ {
					mem.SetF64(0, i, float64(i)*0.25)
				}
				prof := NewProfile(p)
				m, err := RunWorkersProfiled(p, args, mem, launch, dev.cfg, workers, nil, 0, prof)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if refM == nil {
					refM, refMem, refProf = m, mem.Data, prof
					continue
				}
				if !reflect.DeepEqual(m, refM) {
					t.Errorf("workers=%d: metrics diverge:\n got %+v\nwant %+v", workers, m, refM)
				}
				if !bytes.Equal(mem.Data, refMem) {
					t.Errorf("workers=%d: final memory diverges from sequential", workers)
				}
				if !reflect.DeepEqual(prof, refProf) {
					t.Errorf("workers=%d: per-PC profile diverges from sequential", workers)
				}
			}
		})
	}
}

// TestCrossPolicyOutputAgreement checks that all backends compute the same
// final memory: divergence management changes scheduling and cost, never
// results.
func TestCrossPolicyOutputAgreement(t *testing.T) {
	p := build(t, policyDivSrc, pipeline.Options{Config: pipeline.Baseline})
	launch := Launch{GridDim: 3, BlockDim: 40}
	n := int64(launch.Threads())
	args := []interp.Value{interp.IntVal(0), interp.IntVal(n)}

	var refMem []byte
	var refName string
	for _, dev := range policyDevices() {
		mem := interp.NewMemory(1 << 14)
		for i := int64(0); i < n; i++ {
			mem.SetF64(0, i, float64(i)*0.25)
		}
		if _, err := RunWorkers(p, args, mem, launch, dev.cfg, 1); err != nil {
			t.Fatalf("%s: %v", dev.name, err)
		}
		if refMem == nil {
			refMem, refName = mem.Data, dev.name
			continue
		}
		if !bytes.Equal(mem.Data, refMem) {
			t.Errorf("%s: final memory differs from %s", dev.name, refName)
		}
	}
}

// TestPolicyZeroAllocs extends the steady-state allocation contract to
// every backend: after a warm-up warp grows the engine's buffers, further
// warps must not allocate, with or without profiling.
func TestPolicyZeroAllocs(t *testing.T) {
	p := build(t, policyDivSrc, pipeline.Options{Config: pipeline.Baseline})
	for _, pol := range Policies() {
		t.Run(pol.String(), func(t *testing.T) {
			cfg := V100()
			cfg.Policy = pol
			mem := interp.NewMemory(1 << 16)
			launch := Launch{GridDim: 4, BlockDim: 64}
			args := []interp.Value{interp.IntVal(0), interp.IntVal(int64(launch.Threads()))}

			dp, err := decoded(p)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			w := newWarpSim(dp, cfg, mem)
			w.fetchMode = fetchBitset
			w.touched = make([]uint64, bitWords(dp.numLines(cfg.ICacheLineInstrs)))

			var m Metrics
			if err := w.run(args, launch, 0, cfg.WarpSize, &m); err != nil {
				t.Fatalf("warm-up run: %v", err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				if err := w.run(args, launch, cfg.WarpSize, cfg.WarpSize, &m); err != nil {
					t.Fatalf("run: %v", err)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state warp loop allocates: %v allocs/run, want 0", allocs)
			}

			w.prof = newProfileN(dp.name, len(dp.instrs))
			if err := w.run(args, launch, 0, cfg.WarpSize, &m); err != nil {
				t.Fatalf("profiled warm-up run: %v", err)
			}
			allocs = testing.AllocsPerRun(10, func() {
				if err := w.run(args, launch, cfg.WarpSize, cfg.WarpSize, &m); err != nil {
					t.Fatalf("profiled run: %v", err)
				}
			})
			if allocs != 0 {
				t.Fatalf("profiled warp loop allocates: %v allocs/run, want 0", allocs)
			}
		})
	}
}

// TestMinSPPCBarrierWaits pins the policy-specific counter semantics:
// divergent code produces barrier_wait_events under MinSP-PC (groups
// arriving at a convergence barrier wait for their siblings) and none
// under the stack policies, whose joins are pops.
func TestMinSPPCBarrierWaits(t *testing.T) {
	p := build(t, policyDivSrc, pipeline.Options{Config: pipeline.Baseline})
	launch := Launch{GridDim: 2, BlockDim: 64}
	n := int64(launch.Threads())
	args := []interp.Value{interp.IntVal(0), interp.IntVal(n)}

	waits := func(pol PolicyKind) int64 {
		cfg := V100()
		cfg.Policy = pol
		mem := interp.NewMemory(1 << 14)
		prof := NewProfile(p)
		if _, err := RunWorkersProfiled(p, args, mem, launch, cfg, 1, nil, 0, prof); err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		var sum int64
		for _, v := range prof.Counters[ProfBarrierWaits] {
			sum += v
		}
		return sum
	}
	if got := waits(PolicyMinSPPC); got == 0 {
		t.Errorf("minsppc: expected barrier_wait_events > 0 on divergent code, got 0")
	}
	for _, pol := range []PolicyKind{PolicyIPDOM, PolicyVortex} {
		if got := waits(pol); got != 0 {
			t.Errorf("%s: expected no barrier_wait_events, got %d", pol, got)
		}
	}
}

// TestPoliciesAreDistinct guards against one backend silently degenerating
// into another. MinSP-PC's interleaved min-PC schedule differs from the
// stack's depth-first order on any divergent code. Vortex coincides with
// IPDOM on structured flow by design — the models only separate where
// IPDOM's opportunistic back-edge merging fires, i.e. on unstructured
// (unmerged) control flow — so its comparison runs on the unmerged build.
func TestPoliciesAreDistinct(t *testing.T) {
	launch := Launch{GridDim: 2, BlockDim: 64}
	n := int64(launch.Threads())
	args := []interp.Value{interp.IntVal(0), interp.IntVal(n)}

	run := func(p *codegen.Program, pol PolicyKind) *Profile {
		cfg := V100()
		cfg.Policy = pol
		cfg.ICacheLines = 2 // tiny LRU icache: fetch order becomes observable
		mem := interp.NewMemory(1 << 14)
		prof := NewProfile(p)
		if _, err := RunWorkersProfiled(p, args, mem, launch, cfg, 1, nil, 0, prof); err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		return prof
	}

	base := build(t, policyDivSrc, pipeline.Options{Config: pipeline.Baseline})
	if reflect.DeepEqual(run(base, PolicyIPDOM), run(base, PolicyMinSPPC)) {
		t.Errorf("minsppc produced a profile identical to ipdom on divergent code")
	}

	// Compiler-shaped structured loops reconverge identically under both
	// stack models, so the vortex comparison needs genuinely unstructured
	// flow: a generated kernel whose unmerged loop makes IPDOM's
	// opportunistic back-edge merging fire (seed pinned from a scan —
	// harden.Generate is deterministic).
	k := harden.Generate(27)
	opt := ir.Clone(k.F)
	if _, err := pipeline.Optimize(opt, pipeline.Options{Config: pipeline.UnmergeOnly, LoopID: 0, Contain: true}); err != nil {
		t.Fatalf("optimize: %v", err)
	}
	unmerged, err := codegen.Lower(opt)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	kargs := make([]interp.Value, len(k.Args))
	for i, a := range k.Args {
		kargs[i] = interp.IntVal(a)
	}
	runGen := func(pol PolicyKind) *Profile {
		cfg := V100()
		cfg.Policy = pol
		mem := interp.NewMemory(k.MemSize)
		for i, v := range k.F64Init {
			mem.SetF64(k.In0Base, int64(i), v)
		}
		for i, v := range k.I64Init {
			mem.SetI64(k.In1Base, int64(i), v)
		}
		prof := NewProfile(unmerged)
		if _, err := RunWorkersProfiled(unmerged, kargs, mem, Launch{GridDim: k.GridDim, BlockDim: k.BlockDim}, cfg, 1, nil, 0, prof); err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		return prof
	}
	if reflect.DeepEqual(runGen(PolicyIPDOM), runGen(PolicyVortex)) {
		t.Errorf("vortex produced a profile identical to ipdom on unmerged unstructured flow")
	}
}
