package gpusim

import (
	"errors"
	"strings"
	"testing"

	"uu/internal/codegen"
	"uu/internal/interp"
	"uu/internal/ir"
)

// progWith wraps a single malformed instruction (plus a ret) in a minimal
// one-block program.
func progWith(in codegen.Instr) *codegen.Program {
	blk := &codegen.Block{Index: 0, Name: "entry", Instrs: []codegen.Instr{
		in,
		{Kind: codegen.KRet, Dst: codegen.NoReg},
	}}
	return &codegen.Program{
		Name:    "malformed_unit",
		Blocks:  []*codegen.Block{blk},
		NumRegs: 4,
		IPDom:   []int{-1},
	}
}

// TestDecodeMalformedProgramReturnsError pins the decode error contract:
// a Program the decoder cannot handle surfaces a wrapped ErrDecode through
// Run instead of panicking — malformed input is the caller's bug, not a
// simulator invariant.
func TestDecodeMalformedProgramReturnsError(t *testing.T) {
	cases := []struct {
		name string
		in   codegen.Instr
		want string
	}{
		{
			name: "bad special register",
			in:   codegen.Instr{Kind: codegen.KSpecial, IROp: ir.OpAdd, Type: ir.I64, Dst: 0},
			want: "bad special register",
		},
		{
			name: "zext without source type",
			in: codegen.Instr{Kind: codegen.KCvt, IROp: ir.OpZExt, Type: ir.I64, Dst: 0,
				Srcs: []codegen.Operand{{Reg: 1}}},
			want: "zext without a recorded source type",
		},
		{
			name: "bad conversion op",
			in: codegen.Instr{Kind: codegen.KCvt, IROp: ir.OpAdd, Type: ir.I64, Dst: 0,
				Srcs: []codegen.Operand{{Reg: 1}}},
			want: "bad conversion",
		},
		{
			name: "bad float op",
			in: codegen.Instr{Kind: codegen.KCompute, IROp: ir.OpAdd, Type: ir.F64, Dst: 0,
				Srcs: []codegen.Operand{{Reg: 1}, {Reg: 2}}},
			want: "bad float op",
		},
		{
			name: "bad int op",
			in: codegen.Instr{Kind: codegen.KCompute, IROp: ir.OpFAdd, Type: ir.I64, Dst: 0,
				Srcs: []codegen.Operand{{Reg: 1}, {Reg: 2}}},
			want: "bad int op",
		},
		{
			name: "unhandled instruction kind",
			in:   codegen.Instr{Kind: codegen.Kind(250), Type: ir.I64, Dst: 0},
			want: "unhandled instruction kind",
		},
		{
			name: "too many operands",
			in: codegen.Instr{Kind: codegen.KCompute, IROp: ir.OpAdd, Type: ir.I64, Dst: 0,
				Srcs: []codegen.Operand{{Reg: 0}, {Reg: 1}, {Reg: 2}, {Reg: 3}}},
			want: "operands",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := progWith(tc.in)
			mem := interp.NewMemory(1 << 12)
			_, err := Run(p, nil, mem, Launch{GridDim: 1, BlockDim: 32}, V100())
			if err == nil {
				t.Fatal("malformed program simulated without error")
			}
			if !errors.Is(err, ErrDecode) {
				t.Fatalf("error does not wrap ErrDecode: %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			// The failure is cached with the decoded form: a second run must
			// return the same decode error, not a stale or nil result.
			_, err2 := Run(p, nil, mem, Launch{GridDim: 1, BlockDim: 32}, V100())
			if err2 == nil || !errors.Is(err2, ErrDecode) {
				t.Fatalf("second run lost the cached decode error: %v", err2)
			}
		})
	}
}
