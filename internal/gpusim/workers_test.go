package gpusim

import (
	"bytes"
	"reflect"
	"testing"

	"uu/internal/interp"
	"uu/internal/pipeline"
)

// TestRunWorkersDeterminism checks the central contract of the parallel
// scheduler: for every worker count AND every execution backend, metrics
// and final memory are byte-identical to the sequential switch-core
// schedule (one reference per case, so this also pins the two backends
// against each other under every scheduling regime). The table covers the
// interesting regimes: a data-parallel kernel (optimistic path accepted),
// a divergent kernel with a partial final warp, a cross-warp-dependent
// kernel (conflict detected, sequential fallback), and a tiny icache that
// forces the LRU path (parallel mode refused up front).
func TestRunWorkersDeterminism(t *testing.T) {
	chainSrc := `
kernel chain(long* restrict x, long n) {
  long i = (long)global_id();
  if (i < n) {
    long v = 1;
    if (i >= 32) {
      v = x[i - 32] + 1;
    }
    x[i] = v;
  }
}
`
	divergentSrc := `
kernel div(double* restrict x, long n) {
  long i = (long)global_id();
  if (i < n) {
    double v = x[i];
    if (i % 3 == 0) {
      v = v * 2.0 + 1.0;
    } else if (i % 3 == 1) {
      v = v / 3.0;
    }
    x[i] = v + 0.5;
  }
}
`
	tiny := V100()
	tiny.ICacheLines = 2 // overflow: every worker count must take the LRU path

	cases := []struct {
		name   string
		src    string
		launch Launch
		cfg    DeviceConfig
		check  func(t *testing.T, mem *interp.Memory)
	}{
		{"compute", axpySrc, Launch{GridDim: 4, BlockDim: 64}, V100(), nil},
		{"partial_warp_divergent", divergentSrc, Launch{GridDim: 3, BlockDim: 40}, V100(), nil},
		{"cross_warp_chain", chainSrc, Launch{GridDim: 2, BlockDim: 64}, V100(),
			func(t *testing.T, mem *interp.Memory) {
				// Warp w reads warp w-1's writes; the sequential order makes
				// x[i] = i/32 + 1. Any schedule that let the optimistic
				// results through would compute x[i] = 1 for i >= 32.
				for i := int64(0); i < 128; i++ {
					if got, want := mem.I64(0, i), i/32+1; got != want {
						t.Fatalf("x[%d] = %d, want %d", i, got, want)
					}
				}
			}},
		{"icache_thrash", axpySrc, Launch{GridDim: 4, BlockDim: 64}, tiny, nil},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := build(t, tc.src, pipeline.Options{Config: pipeline.Baseline})
			init := interp.NewMemory(1 << 15)
			for i := int64(0); i < 256; i++ {
				init.SetF64(0, i, float64(i)*0.25)
			}
			n := int64(tc.launch.Threads())
			args := make([]interp.Value, len(p.ParamRegs))
			for i := range args {
				args[i] = interp.IntVal(0)
			}
			args[len(args)-1] = interp.IntVal(n)
			if tc.name == "compute" {
				// axpy(x, y, a, n)
				args = []interp.Value{interp.IntVal(0), interp.IntVal(8 * n), interp.FloatVal(3), interp.IntVal(n)}
			}

			var refM *Metrics
			var refMem []byte
			for _, exec := range Execs() {
				for _, workers := range []int{1, 2, 4, 8} {
					mem := &interp.Memory{Data: append([]byte(nil), init.Data...)}
					cfg := tc.cfg
					cfg.Exec = exec
					m, err := RunWorkers(p, args, mem, tc.launch, cfg, workers)
					if err != nil {
						t.Fatalf("exec=%s workers=%d: %v", exec, workers, err)
					}
					if refM == nil {
						refM, refMem = m, mem.Data
						if tc.check != nil {
							tc.check(t, mem)
						}
						continue
					}
					if !reflect.DeepEqual(m, refM) {
						t.Errorf("exec=%s workers=%d: metrics diverge:\n got %+v\nwant %+v", exec, workers, m, refM)
					}
					if !bytes.Equal(mem.Data, refMem) {
						t.Errorf("exec=%s workers=%d: final memory diverges from sequential", exec, workers)
					}
				}
			}
		})
	}
}
