package gpusim

import (
	"fmt"
	"strings"
)

// ExecKind selects the execution backend the simulator runs warps on. Both
// backends implement the same machine model and produce byte-identical
// metrics, profiles, and memory for every program (the differential tests
// pin this); they differ only in how fast the host simulates.
type ExecKind uint8

const (
	// ExecSwitch is the pre-decoded interpreter core: one trip through the
	// dispatch switch per retired warp instruction, boxed interp.Value
	// registers. The zero value, so existing DeviceConfig literals keep
	// their behavior.
	ExecSwitch ExecKind = iota
	// ExecThreaded is the threaded-code core: each decoded program is
	// compiled once into per-instruction closures over SoA register files
	// (flat int64/float64 lane arrays per register), fused into
	// superinstruction blocks that run without touching the dispatch
	// switch or the divergence policy between terminators.
	ExecThreaded

	numExecs
)

func (k ExecKind) String() string {
	switch k {
	case ExecSwitch:
		return "switch"
	case ExecThreaded:
		return "threaded"
	}
	return fmt.Sprintf("ExecKind(%d)", uint8(k))
}

// Execs returns all execution backends in canonical order.
func Execs() []ExecKind {
	return []ExecKind{ExecSwitch, ExecThreaded}
}

// ParseExec resolves a CLI/override spelling of an execution backend.
func ParseExec(s string) (ExecKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "switch":
		return ExecSwitch, nil
	case "threaded":
		return ExecThreaded, nil
	}
	return ExecSwitch, fmt.Errorf("gpusim: unknown exec backend %q (want switch or threaded)", s)
}
