package gpusim

import (
	"errors"
	"fmt"
	"sync"

	"uu/internal/codegen"
	"uu/internal/interp"
	"uu/internal/ir"
)

// ErrDecode reports that a program is not valid VPTX as far as the
// simulator's decoder is concerned — an unknown special register, a zext
// with no recorded source type, an unhandled instruction kind, a bad
// operand count. These are malformed-input conditions (a buggy or
// hand-crafted Program), not simulator invariants, so they surface as
// wrapped errors through Run/RunWorkers instead of panics; match with
// errors.Is(err, ErrDecode).
var ErrDecode = errors.New("invalid program")

// This file builds the pre-decoded execution form of a VPTX program. The
// interpreter loop in sim.go re-derived static facts dynamically on every
// executed instruction: interface assertions materializing immediates,
// nested kind/opcode switches, issue/latency lookups, per-miss icache
// scans. Decoding hoists all of it to a one-time pass per compiled
// program: immediates become interp.Values, dispatch collapses to a flat
// execOp tag, truncation/rounding/unsigned-masking are precomputed, and
// the instruction stream is one cache-friendly array indexed by global
// instruction id (also the icache address). The decoded form is cached on
// codegen.Program.Decoded, so it is built once and shared across warps,
// launches, worker shards, and sweep configurations.

// execOp is the flat dispatch tag of a decoded instruction: one switch
// level in the hot loop instead of Kind plus IROp plus type tests.
type execOp uint8

const (
	xInvalid execOp = iota

	// control / memory / structural
	xBra
	xRet
	xCondBra
	xLd
	xSt
	xBar
	xTID
	xNTID
	xCTAID
	xNCTAID

	// data movement and predication
	xMov
	xSelp
	xSetpI
	xSetpF

	// conversions
	xTrunc
	xZExt
	xSExt
	xSIToFP
	xFPToSI
	xFPExt
	xFPTrunc

	// integer compute
	xAdd
	xSub
	xMul
	xSDiv
	xUDiv
	xSRem
	xURem
	xShl
	xLShr
	xAShr
	xAnd
	xOr
	xXor
	xSMin
	xSMax

	// floating-point compute
	xFAdd
	xFSub
	xFMul
	xFDiv
	xPow
	xFMin
	xFMax
	xSqrt
	xFAbs
	xExp
	xLog
	xSin
	xCos
	xFloor
)

// Post-op integer truncation tags (the decoded form of truncI's type
// switch).
const (
	tNone uint8 = iota
	tI1
	tI8
	tI32
)

// Scoreboard latency classes; warpSim resolves them against the device
// config at run time (class 0 is the only config-dependent latency).
const (
	latMem uint8 = iota // cfg.MemLoadLatency
	lat24               // integer/float division
	lat20               // transcendentals
	lat5                // everything else
)

// dSrc is a decoded operand: a register index, or a materialized
// immediate (reg < 0) — no interface assertion in the hot loop.
type dSrc struct {
	imm interp.Value
	reg int32
}

// dInstr is one pre-decoded instruction. Everything the execution core
// needs per dynamic instruction is precomputed here.
type dInstr struct {
	exec     execOp
	class    uint8 // codegen.Class
	trunc    uint8 // post-op integer truncation tag
	rndF32   bool  // round float results to f32
	latClass uint8
	memKind  uint8 // ir.Kind for xLd/xSt
	nSrcs    uint8
	pred     ir.Pred
	dst      int32 // destination register, -1 = none
	t0, t1   int32 // branch targets
	issue    float64
	aux      uint64 // unsigned-compare mask, shift mask, or zext mask
	memSize  int64  // access size in bytes for xLd/xSt
	typ      *ir.Type
	srcs     [3]dSrc
}

// decodedProgram is the flat, shared execution form of a VPTX program.
type decodedProgram struct {
	name       string
	instrs     []dInstr
	blockStart []int32
	blockEnd   []int32
	ipdom      []int
	numRegs    int
	paramRegs  []int32

	// lineMemo caches the per-instruction icache line index for each
	// ICacheLineInstrs value seen (the only device parameter the decoded
	// form depends on).
	mu       sync.Mutex
	lineMemo map[int][]int32

	// threaded caches the compiled threaded-code form (threaded.go). Its
	// closures capture only decode-time constants, so like the decoded
	// form itself it is shared across warps, launches, and worker shards.
	threadedOnce sync.Once
	threaded     *threadedProgram
}

// threadedProg returns the threaded-code compilation of the program,
// building it on first use.
func (dp *decodedProgram) threadedProg() *threadedProgram {
	dp.threadedOnce.Do(func() { dp.threaded = compileThreaded(dp) })
	return dp.threaded
}

// decodeResult caches the outcome of decodeProgram — including a decode
// failure, which is a property of the program and equally permanent.
type decodeResult struct {
	dp  *decodedProgram
	err error
}

// decoded returns the cached decoded form of p, building it on first use.
func decoded(p *codegen.Program) (*decodedProgram, error) {
	p.DecodedOnce.Do(func() {
		dp, err := decodeProgram(p)
		p.Decoded = decodeResult{dp, err}
	})
	r := p.Decoded.(decodeResult)
	return r.dp, r.err
}

// lines returns the icache line index of every instruction for the given
// line size, memoized per decoded program.
func (dp *decodedProgram) lines(lineInstrs int) []int32 {
	dp.mu.Lock()
	defer dp.mu.Unlock()
	if l, ok := dp.lineMemo[lineInstrs]; ok {
		return l
	}
	l := make([]int32, len(dp.instrs))
	for i := range l {
		l[i] = int32(i / lineInstrs)
	}
	dp.lineMemo[lineInstrs] = l
	return l
}

// numLines returns how many icache lines the program spans.
func (dp *decodedProgram) numLines(lineInstrs int) int {
	return (len(dp.instrs) + lineInstrs - 1) / lineInstrs
}

func decodeProgram(p *codegen.Program) (*decodedProgram, error) {
	dp := &decodedProgram{
		name:       p.Name,
		blockStart: make([]int32, len(p.Blocks)),
		blockEnd:   make([]int32, len(p.Blocks)),
		ipdom:      p.IPDom,
		numRegs:    p.NumRegs,
		lineMemo:   map[int][]int32{},
	}
	for _, r := range p.ParamRegs {
		dp.paramRegs = append(dp.paramRegs, int32(r))
	}
	n := 0
	for i, b := range p.Blocks {
		dp.blockStart[i] = int32(n)
		n += len(b.Instrs)
		dp.blockEnd[i] = int32(n)
	}
	dp.instrs = make([]dInstr, 0, n)
	for bi, b := range p.Blocks {
		for i := range b.Instrs {
			d, err := decodeInstr(p, &b.Instrs[i])
			if err != nil {
				return nil, fmt.Errorf("gpusim: %s block %d instr %d: %w", p.Name, bi, i, err)
			}
			dp.instrs = append(dp.instrs, d)
		}
	}
	return dp, nil
}

// uMask returns the mask that zero-extends a value of integer type t:
// toU(t, v) == uint64(v) & uMask(t) for canonically truncated values.
func uMask(t *ir.Type) uint64 {
	switch t.Kind {
	case ir.KindI1:
		return 1
	case ir.KindI8:
		return 0xFF
	case ir.KindI32:
		return 0xFFFF_FFFF
	default:
		return ^uint64(0)
	}
}

func truncTagOf(t *ir.Type) uint8 {
	switch t.Kind {
	case ir.KindI1:
		return tI1
	case ir.KindI8:
		return tI8
	case ir.KindI32:
		return tI32
	default:
		return tNone
	}
}

func decodeInstr(p *codegen.Program, in *codegen.Instr) (dInstr, error) {
	d := dInstr{
		class:    uint8(in.Class()),
		latClass: latClassOf(in),
		pred:     in.Pred,
		dst:      int32(in.Dst),
		t0:       int32(in.Targets[0]),
		t1:       int32(in.Targets[1]),
		issue:    float64(in.IssueCycles()),
		typ:      in.Type,
	}
	if in.Dst == codegen.NoReg {
		d.dst = -1
	}
	if len(in.Srcs) > 3 {
		return dInstr{}, fmt.Errorf("%w: %d operands", ErrDecode, len(in.Srcs))
	}
	d.nSrcs = uint8(len(in.Srcs))
	for i, s := range in.Srcs {
		if s.IsImm() {
			c := s.Imm.(*ir.Const)
			v := interp.IntVal(c.Int)
			if c.Typ.IsFloat() {
				v = interp.FloatVal(c.Float)
			}
			d.srcs[i] = dSrc{reg: -1, imm: v}
		} else {
			d.srcs[i] = dSrc{reg: int32(s.Reg)}
		}
	}

	switch in.Kind {
	case codegen.KBra:
		d.exec = xBra
	case codegen.KRet:
		d.exec = xRet
	case codegen.KCondBra:
		d.exec = xCondBra
	case codegen.KLd:
		d.exec = xLd
		d.memKind = uint8(in.Type.Kind)
		d.memSize = in.Type.Size()
	case codegen.KSt:
		d.exec = xSt
		d.memKind = uint8(in.Type.Kind)
		d.memSize = in.Type.Size()
	case codegen.KBar:
		d.exec = xBar
	case codegen.KSpecial:
		switch in.IROp {
		case ir.OpTID:
			d.exec = xTID
		case ir.OpNTID:
			d.exec = xNTID
		case ir.OpCTAID:
			d.exec = xCTAID
		case ir.OpNCTAID:
			d.exec = xNCTAID
		default:
			return dInstr{}, fmt.Errorf("%w: bad special register %s", ErrDecode, in.IROp)
		}
	case codegen.KMov:
		d.exec = xMov
	case codegen.KSelp:
		d.exec = xSelp
	case codegen.KSetp:
		// The compare reads operands of in.Type (the *source* type);
		// unsigned predicates zero-extend through aux.
		if in.IROp == ir.OpICmp {
			d.exec = xSetpI
			d.aux = uMask(in.Type)
		} else {
			d.exec = xSetpF
		}
	case codegen.KCvt:
		d.trunc = truncTagOf(in.Type)
		d.rndF32 = in.Type == ir.F32
		switch in.IROp {
		case ir.OpTrunc:
			d.exec = xTrunc
		case ir.OpZExt:
			if in.SrcType == nil {
				return dInstr{}, fmt.Errorf("%w: zext without a recorded source type", ErrDecode)
			}
			d.exec = xZExt
			d.aux = uMask(in.SrcType)
		case ir.OpSExt:
			d.exec = xSExt
		case ir.OpSIToFP:
			d.exec = xSIToFP
		case ir.OpFPToSI:
			d.exec = xFPToSI
		case ir.OpFPExt:
			d.exec = xFPExt
		case ir.OpFPTrunc:
			d.exec = xFPTrunc
		default:
			return dInstr{}, fmt.Errorf("%w: bad conversion %s", ErrDecode, in.IROp)
		}
	case codegen.KCompute:
		d.trunc = truncTagOf(in.Type)
		d.rndF32 = in.Type == ir.F32
		if in.Type.IsFloat() {
			switch in.IROp {
			case ir.OpFAdd:
				d.exec = xFAdd
			case ir.OpFSub:
				d.exec = xFSub
			case ir.OpFMul:
				d.exec = xFMul
			case ir.OpFDiv:
				d.exec = xFDiv
			case ir.OpPow:
				d.exec = xPow
			case ir.OpFMin:
				d.exec = xFMin
			case ir.OpFMax:
				d.exec = xFMax
			case ir.OpSqrt:
				d.exec = xSqrt
			case ir.OpFAbs:
				d.exec = xFAbs
			case ir.OpExp:
				d.exec = xExp
			case ir.OpLog:
				d.exec = xLog
			case ir.OpSin:
				d.exec = xSin
			case ir.OpCos:
				d.exec = xCos
			case ir.OpFloor:
				d.exec = xFloor
			default:
				return dInstr{}, fmt.Errorf("%w: bad float op %s", ErrDecode, in.IROp)
			}
		} else {
			switch in.IROp {
			case ir.OpAdd:
				d.exec = xAdd
			case ir.OpSub:
				d.exec = xSub
			case ir.OpMul:
				d.exec = xMul
			case ir.OpSDiv:
				d.exec = xSDiv
			case ir.OpUDiv:
				d.exec = xUDiv
			case ir.OpSRem:
				d.exec = xSRem
			case ir.OpURem:
				d.exec = xURem
			case ir.OpShl:
				d.exec = xShl
				d.aux = uint64(in.Type.Bits() - 1)
			case ir.OpLShr:
				d.exec = xLShr
				d.aux = uint64(in.Type.Bits() - 1)
			case ir.OpAShr:
				d.exec = xAShr
				d.aux = uint64(in.Type.Bits() - 1)
			case ir.OpAnd:
				d.exec = xAnd
			case ir.OpOr:
				d.exec = xOr
			case ir.OpXor:
				d.exec = xXor
			case ir.OpSMin:
				d.exec = xSMin
			case ir.OpSMax:
				d.exec = xSMax
			default:
				return dInstr{}, fmt.Errorf("%w: bad int op %s", ErrDecode, in.IROp)
			}
		}
	default:
		return dInstr{}, fmt.Errorf("%w: unhandled instruction kind %d", ErrDecode, in.Kind)
	}
	return d, nil
}

// latClassOf mirrors the scoreboard result-latency model of instrLatency.
func latClassOf(in *codegen.Instr) uint8 {
	switch in.Kind {
	case codegen.KLd:
		return latMem
	case codegen.KCompute:
		switch in.IROp {
		case ir.OpSDiv, ir.OpUDiv, ir.OpSRem, ir.OpURem, ir.OpFDiv:
			return lat24
		case ir.OpSqrt, ir.OpExp, ir.OpLog, ir.OpSin, ir.OpCos, ir.OpPow:
			return lat20
		}
		return lat5
	default:
		return lat5
	}
}
