package gpusim

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"uu/internal/interp"
	"uu/internal/ir"
	"uu/internal/remark"
)

// Parallel warp scheduling that reproduces the sequential schedule
// byte-for-byte.
//
// The sequential schedule couples warps through exactly two channels:
// shared memory (a warp may read what an earlier warp wrote) and the
// warm-across-warps instruction cache. The parallel path handles both by
// running optimistically and auditing:
//
// Phase A runs every warp concurrently, each against a private copy of
// memory (workers share nothing), recording per warp: its metrics under a
// fully-warm icache, the set of icache lines it touches, the byte ranges
// it reads and writes, and an ordered log of its stores.
//
// The audit then decides:
//
//   - If any warp's read ranges overlap another warp's write ranges, the
//     warp order is semantically meaningful and the optimistic results
//     are invalid. Shared memory is untouched (phase A only wrote private
//     copies), so the run falls back to the exact sequential schedule.
//     This verdict is schedule-independent: a warp's phase-A execution
//     can diverge from its sequential execution only after it reads a
//     byte some other warp writes, and that read/write pair is recorded
//     before the divergence can influence anything — so a conflict is
//     detected in every schedule exactly when one exists in any.
//
//   - Otherwise every warp's phase-A execution is identical to its
//     sequential execution (no read ever observed another warp's write),
//     so per-warp metrics and store values are exact. Phase B walks warps
//     in order, replaying store logs onto shared memory, and fixes up the
//     one remaining cross-warp effect: instruction fetch. A warp whose
//     icache lines were all touched by earlier warps misses nothing under
//     the sequential schedule either — its warm-cache metrics are
//     accepted as-is. A warp that touches any line first is re-run
//     against the accumulated line set, which charges its fetch stalls
//     exactly (the program fits the icache, so lines are never evicted
//     and a miss is precisely a global first touch). Programs that
//     overflow the icache never take the parallel path at all.
//
// Per-warp metrics are integers accumulated with per-warp rounding (as in
// the sequential schedule) and summed in warp order, so the merged totals
// are bit-equal to the sequential ones.
//
// Per-PC profiles ride the same argument. Every profile counter is an
// integer accumulated per executed instruction (fixed-point for the
// fractional cycle counters), so sums are partition-independent: phase A
// collects one profile per worker and they merge by plain addition. A warp
// the audit re-runs had its warm-cache contribution merged already; the
// audit adds its exact counters and then regenerates the warm contribution
// bit-identically — by re-running the warp in warm mode against a snapshot
// of shared memory taken before the audit run (the no-conflict verdict
// guarantees that run reads the same values phase A read) — and subtracts
// it. The result equals the sequential profile byte for byte.

// memWrite is one logged store, replayed in warp order by the audit.
type memWrite struct {
	addr int64
	val  interp.Value
	size int32
	kind uint8
}

const maxSpans = 16

// span is a half-open byte interval [lo, hi).
type span struct {
	lo, hi int64
}

// spanSet is a small sorted set of disjoint byte intervals. Once it would
// exceed maxSpans it merges the two closest intervals; that
// over-approximation can only cause a spurious conflict (a safe
// sequential fallback), never a missed one.
type spanSet struct {
	spans []span
}

func (ss *spanSet) add(lo, hi int64) {
	s := ss.spans
	i := 0
	for i < len(s) && s[i].hi < lo {
		i++
	}
	j := i
	for j < len(s) && s[j].lo <= hi {
		if s[j].lo < lo {
			lo = s[j].lo
		}
		if s[j].hi > hi {
			hi = s[j].hi
		}
		j++
	}
	if i == j {
		s = append(s, span{})
		copy(s[i+1:], s[i:])
		s[i] = span{lo, hi}
	} else {
		s[i] = span{lo, hi}
		s = append(s[:i+1], s[j:]...)
	}
	if len(s) > maxSpans {
		best, bestGap := 1, int64(math.MaxInt64)
		for k := 1; k < len(s); k++ {
			if g := s[k].lo - s[k-1].hi; g < bestGap {
				bestGap, best = g, k
			}
		}
		s[best-1].hi = s[best].hi
		s = append(s[:best], s[best+1:]...)
	}
	ss.spans = s
}

// crossWarpConflict reports whether any warp reads a byte range that a
// different warp writes.
func crossWarpConflict(reads, writes []spanSet) bool {
	type wspan struct {
		lo, hi int64
		warp   int32
	}
	var ws []wspan
	for wi := range writes {
		for _, s := range writes[wi].spans {
			ws = append(ws, wspan{s.lo, s.hi, int32(wi)})
		}
	}
	if len(ws) == 0 {
		return false
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].lo < ws[j].lo })
	// maxHi[i] bounds the reach of ws[0..i], letting the scan below stop
	// early even though intervals from different warps may overlap.
	maxHi := make([]int64, len(ws))
	h := int64(math.MinInt64)
	for i, s := range ws {
		if s.hi > h {
			h = s.hi
		}
		maxHi[i] = h
	}
	for wi := range reads {
		for _, r := range reads[wi].spans {
			idx := sort.Search(len(ws), func(i int) bool { return ws[i].lo >= r.hi })
			for i := idx - 1; i >= 0 && maxHi[i] > r.lo; i-- {
				if ws[i].hi > r.lo && int(ws[i].warp) != wi {
					return true
				}
			}
		}
	}
	return false
}

func runParallel(ctx context.Context, dp *decodedProgram, args []interp.Value, mem *interp.Memory, launch Launch, cfg DeviceConfig, simWarps, total, workers int, m *Metrics, tr *remark.Trace, tid int, prof *Profile) error {
	bw := bitWords(dp.numLines(cfg.ICacheLineInstrs))
	wm := make([]Metrics, simWarps)
	touched := make([]uint64, simWarps*bw)
	errs := make([]error, simWarps)
	reads := make([]spanSet, simWarps)
	writes := make([]spanSet, simWarps)
	logs := make([][]memWrite, simWarps)
	var wprofs []*Profile
	if prof != nil {
		wprofs = make([]*Profile, workers)
	}

	// Phase A: optimistic concurrent execution on private memories. Each
	// worker's whole shard is one trace span; sim-worker lanes nest under
	// the caller's lane as tid*100+1+i (trace layout only — metrics are
	// unaffected).
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			done := tr.Span(tid*100+1+worker, "sim-shard", "gpusim")
			defer done()
			priv := &interp.Memory{Data: append([]byte(nil), mem.Data...)}
			w := newWarpSim(dp, cfg, priv)
			w.setContext(ctx)
			w.fetchMode = fetchWarm
			if prof != nil {
				wprofs[worker] = newProfileN(dp.name, len(dp.instrs))
				w.prof = wprofs[worker]
			}
			for {
				wi := int(next.Add(1)) - 1
				if wi >= simWarps {
					return
				}
				w.touched = touched[wi*bw : (wi+1)*bw]
				w.rSet, w.wSet, w.writeLog = &reads[wi], &writes[wi], &logs[wi]
				first, count := warpBounds(wi, cfg.WarpSize, total)
				errs[wi] = w.run(args, launch, first, count, &wm[wi])
			}
		}(i)
	}
	wg.Wait()

	if crossWarpConflict(reads, writes) {
		// prof was never written in phase A (workers profile into private
		// arrays), so the fallback profiles the exact schedule from scratch.
		tr.Instant(tid, "sim-conflict-fallback", "gpusim", nil)
		return runSequential(ctx, dp, args, mem, launch, cfg, simWarps, total, m, tr, tid, prof)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if prof != nil {
		for _, wp := range wprofs {
			if wp != nil {
				prof.Add(wp)
			}
		}
	}

	// Phase B: in-order audit — replay stores, fix up fetch stalls.
	defer tr.Span(tid, "sim-audit", "gpusim")()
	global := make([]uint64, bw)
	var audit *warpSim
	var rerun *warpSim // warm-mode re-run regenerating phase-A profile contributions
	var rerunProf *Profile
	var scratch *interp.Memory
	for wi := 0; wi < simWarps; wi++ {
		wbits := touched[wi*bw : (wi+1)*bw]
		fresh := false
		for k, word := range wbits {
			if word&^global[k] != 0 {
				fresh = true
				break
			}
		}
		if !fresh {
			m.Add(&wm[wi])
			m.Warps++
			for _, wr := range logs[wi] {
				mem.StoreKind(ir.Kind(wr.kind), int64(wr.size), wr.addr, wr.val)
			}
			continue
		}
		// First global touch of some line: re-run this warp against the
		// in-order line set for exact miss accounting. It writes shared
		// memory directly (same values as its log), so no replay.
		if audit == nil {
			audit = newWarpSim(dp, cfg, mem)
			audit.setContext(ctx)
			audit.fetchMode = fetchBitset
			audit.touched = global
			audit.prof = prof
		}
		// For profiling, snapshot memory before the audit run: the warm
		// re-run below must observe what this warp's phase-A run saw, not
		// the values the audit run is about to store.
		if prof != nil {
			if scratch == nil {
				scratch = &interp.Memory{}
				rerunProf = newProfileN(dp.name, len(dp.instrs))
				rerun = newWarpSim(dp, cfg, scratch)
				rerun.fetchMode = fetchWarm
				rerun.touched = make([]uint64, bw)
				rerun.prof = rerunProf
			}
			scratch.Data = append(scratch.Data[:0], mem.Data...)
		}
		var rm Metrics
		first, count := warpBounds(wi, cfg.WarpSize, total)
		if err := audit.run(args, launch, first, count, &rm); err != nil {
			return err
		}
		m.Add(&rm)
		m.Warps++
		if prof != nil {
			// The audit run added this warp's exact counters; its optimistic
			// warm-cache contribution (already merged from the worker arrays)
			// is regenerated bit-identically and subtracted.
			rerunProf.Reset()
			var rr Metrics
			if err := rerun.run(args, launch, first, count, &rr); err != nil {
				return err
			}
			prof.Sub(rerunProf)
		}
	}
	return nil
}
