package gpusim

import (
	"testing"

	"uu/internal/codegen"
	"uu/internal/interp"
	"uu/internal/lang"
	"uu/internal/pipeline"
)

// build compiles MiniCU source through the given pipeline config to VPTX.
func build(t testing.TB, src string, cfg pipeline.Options) *codegen.Program {
	t.Helper()
	f := lang.MustCompileKernel(src)
	cfg.VerifyEachPass = true
	if _, err := pipeline.Optimize(f, cfg); err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	p, err := codegen.Lower(f)
	if err != nil {
		t.Fatalf("codegen: %v", err)
	}
	return p
}

const axpySrc = `
kernel axpy(double* restrict x, double* restrict y, double a, long n) {
  long i = (long)global_id();
  if (i < n) {
    y[i] = a * x[i] + y[i];
  }
}
`

func TestSimulatorMatchesInterpreter(t *testing.T) {
	// Run the same kernel via the sequential interpreter (oracle) and the
	// SIMT simulator; final memory must agree.
	f := lang.MustCompileKernel(axpySrc)
	refMem := interp.NewMemory(8 * 256)
	simMem := interp.NewMemory(8 * 256)
	for i := int64(0); i < 100; i++ {
		refMem.SetF64(0, i, float64(i)*0.5)
		simMem.SetF64(0, i, float64(i)*0.5)
		refMem.SetF64(8*100, i, float64(i))
		simMem.SetF64(8*100, i, float64(i))
	}
	args := []interp.Value{interp.IntVal(0), interp.IntVal(800), interp.FloatVal(3), interp.IntVal(100)}
	launch := Launch{GridDim: 2, BlockDim: 64}
	for tidx := 0; tidx < launch.Threads(); tidx++ {
		env := interp.Env{
			TID: int32(tidx % launch.BlockDim), NTID: int32(launch.BlockDim),
			CTAID: int32(tidx / launch.BlockDim), NCTAID: int32(launch.GridDim),
		}
		if _, err := interp.Run(f, args, refMem, env); err != nil {
			t.Fatalf("interp: %v", err)
		}
	}

	p := build(t, axpySrc, pipeline.Options{Config: pipeline.Baseline})
	me, err := Run(p, args, simMem, launch, V100())
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	for i := int64(0); i < 110; i++ {
		if refMem.F64(8*100, i) != simMem.F64(8*100, i) {
			t.Fatalf("memory mismatch at y[%d]: interp=%v sim=%v", i, refMem.F64(8*100, i), simMem.F64(8*100, i))
		}
	}
	if me.Warps != 4 {
		t.Fatalf("warps = %d, want 4", me.Warps)
	}
	if me.Cycles <= 0 || me.ThreadInstrs <= 0 {
		t.Fatalf("metrics empty: %+v", me)
	}
}

func TestCoalescingTransactions(t *testing.T) {
	// Contiguous f64 accesses by a full warp touch 8 segments of 32 bytes;
	// a strided access touches one segment per thread.
	contiguous := `
kernel c(double* restrict x) {
  long i = (long)tid();
  x[i] = 1.0;
}
`
	strided := `
kernel s(double* restrict x) {
  long i = (long)tid() * 8;
  x[i] = 1.0;
}
`
	launch := Launch{GridDim: 1, BlockDim: 32}
	pc := build(t, contiguous, pipeline.Options{Config: pipeline.Baseline})
	ps := build(t, strided, pipeline.Options{Config: pipeline.Baseline})
	memC := interp.NewMemory(8 * 32 * 8)
	memS := interp.NewMemory(8 * 32 * 8)
	mc, err := Run(pc, []interp.Value{interp.IntVal(0)}, memC, launch, V100())
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	ms, err := Run(ps, []interp.Value{interp.IntVal(0)}, memS, launch, V100())
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	if mc.GstTransactions != 8 {
		t.Fatalf("contiguous store transactions = %d, want 8", mc.GstTransactions)
	}
	if ms.GstTransactions != 32 {
		t.Fatalf("strided store transactions = %d, want 32", ms.GstTransactions)
	}
	if ms.Cycles <= mc.Cycles {
		t.Fatalf("strided access should cost more cycles: %d vs %d", ms.Cycles, mc.Cycles)
	}
}

func TestDivergenceSerializesAndReconverges(t *testing.T) {
	// Odd/even threads take different paths; both sides execute serially and
	// reconverge. Warp execution efficiency drops below 1 but results are
	// correct for every thread.
	src := `
kernel d(long* restrict out) {
  long i = (long)tid();
  long v = 0;
  if ((i & 1) != 0) {
    v = i * 3;
  } else {
    v = i + 100;
  }
  out[i] = v;
}
`
	// Disable if-conversion so the branch survives to the simulator.
	p := build(t, src, pipeline.Options{Config: pipeline.Baseline, DisableIfConvert: true})
	if p.CountKind(codegen.KCondBra) == 0 {
		t.Fatalf("branch was removed despite DisableIfConvert:\n%s", p.String())
	}
	mem := interp.NewMemory(8 * 32)
	m, err := Run(p, []interp.Value{interp.IntVal(0)}, mem, Launch{GridDim: 1, BlockDim: 32}, V100())
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	for i := int64(0); i < 32; i++ {
		want := i + 100
		if i&1 != 0 {
			want = i * 3
		}
		if got := mem.I64(0, i); got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
	wee := m.WarpExecutionEfficiency(V100())
	if wee >= 0.999 {
		t.Fatalf("divergent kernel reports full warp efficiency (%v)", wee)
	}

	// The if-converted build executes the same logic branch-free at full
	// efficiency.
	pSel := build(t, src, pipeline.Options{Config: pipeline.Baseline})
	if pSel.CountKind(codegen.KSelp) == 0 {
		t.Fatalf("baseline did not predicate the diamond:\n%s", pSel.String())
	}
	memSel := interp.NewMemory(8 * 32)
	mSel, err := Run(pSel, []interp.Value{interp.IntVal(0)}, memSel, Launch{GridDim: 1, BlockDim: 32}, V100())
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	for i := int64(0); i < 32; i++ {
		if memSel.I64(0, i) != mem.I64(0, i) {
			t.Fatalf("predicated result differs at %d", i)
		}
	}
	if wee2 := mSel.WarpExecutionEfficiency(V100()); wee2 < 0.999 {
		t.Fatalf("predicated kernel not at full efficiency: %v", wee2)
	}
}

func TestNestedDivergenceReconverges(t *testing.T) {
	src := `
kernel n2(long* restrict out) {
  long i = (long)tid();
  long v = 0;
  if ((i & 1) != 0) {
    if ((i & 2) != 0) { v = 1; } else { v = 2; }
  } else {
    if ((i & 4) != 0) { v = 3; } else { v = 4; }
  }
  out[i] = v + 10;
}
`
	p := build(t, src, pipeline.Options{Config: pipeline.Baseline, DisableIfConvert: true})
	mem := interp.NewMemory(8 * 32)
	if _, err := Run(p, []interp.Value{interp.IntVal(0)}, mem, Launch{GridDim: 1, BlockDim: 32}, V100()); err != nil {
		t.Fatalf("sim: %v", err)
	}
	for i := int64(0); i < 32; i++ {
		var v int64
		switch {
		case i&1 != 0 && i&2 != 0:
			v = 1
		case i&1 != 0:
			v = 2
		case i&4 != 0:
			v = 3
		default:
			v = 4
		}
		if got := mem.I64(0, i); got != v+10 {
			t.Fatalf("out[%d] = %d, want %d", i, got, v+10)
		}
	}
}

func TestDivergentLoopTripCounts(t *testing.T) {
	// Threads loop tid+1 times; divergence narrows the active mask as
	// threads finish, and all results must still be exact.
	src := `
kernel lp(long* restrict out) {
  long i = (long)tid();
  long acc = 0;
  for (long k = 0; k <= i; k++) {
    acc += k;
  }
  out[i] = acc;
}
`
	p := build(t, src, pipeline.Options{Config: pipeline.Baseline})
	mem := interp.NewMemory(8 * 32)
	m, err := Run(p, []interp.Value{interp.IntVal(0)}, mem, Launch{GridDim: 1, BlockDim: 32}, V100())
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	for i := int64(0); i < 32; i++ {
		want := i * (i + 1) / 2
		if got := mem.I64(0, i); got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
	if wee := m.WarpExecutionEfficiency(V100()); wee >= 0.999 || wee <= 0.1 {
		t.Fatalf("unexpected warp efficiency %v for ragged loop", wee)
	}
}

func TestICacheStalls(t *testing.T) {
	// A huge straight-line kernel overflows the icache each iteration is
	// fetched; a tiny loop stays resident. Compare fetch stalls.
	small := `
kernel s(long* restrict out, long n) {
  long acc = 0;
  for (long i = 0; i < n; i++) { acc += i; }
  out[0] = acc;
}
`
	p := build(t, small, pipeline.Options{Config: pipeline.Baseline})
	mem := interp.NewMemory(8)
	m, err := Run(p, []interp.Value{interp.IntVal(0), interp.IntVal(10000)}, mem, Launch{GridDim: 1, BlockDim: 1}, V100())
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	if pct := m.StallInstFetchPct(); pct > 0.01 {
		t.Fatalf("resident loop shows %v fetch stalls", pct)
	}
	if mem.I64(0, 0) != 10000*9999/2 {
		t.Fatalf("wrong sum")
	}
}

func TestSampling(t *testing.T) {
	p := build(t, axpySrc, pipeline.Options{Config: pipeline.Baseline})
	args := []interp.Value{interp.IntVal(0), interp.IntVal(1 << 20), interp.FloatVal(2), interp.IntVal(1 << 16)}
	mem := interp.NewMemory(1 << 21)
	full, err := Run(p, args, mem, Launch{GridDim: 2048, BlockDim: 32}, V100())
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	mem2 := interp.NewMemory(1 << 21)
	sampled, err := Run(p, args, mem2, Launch{GridDim: 2048, BlockDim: 32, SampleWarps: 64}, V100())
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	ratio := float64(sampled.Cycles) / float64(full.Cycles)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("sampled cycles off by %vx", ratio)
	}
}

func TestPartialWarp(t *testing.T) {
	// 40 threads: one full warp plus a partial 8-lane warp; every thread's
	// result must be exact and the partial warp must report partial activity.
	src := `
kernel pw(long* restrict out, long n) {
  long i = (long)global_id();
  if (i >= n) { return; }
  out[i] = i * i;
}
`
	p := build(t, src, pipeline.Options{Config: pipeline.Baseline})
	mem := interp.NewMemory(8 * 64)
	m, err := Run(p, []interp.Value{interp.IntVal(0), interp.IntVal(40)}, mem,
		Launch{GridDim: 1, BlockDim: 40}, V100())
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	for i := int64(0); i < 40; i++ {
		if got := mem.I64(0, i); got != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, got, i*i)
		}
	}
	if m.Warps != 2 {
		t.Fatalf("warps = %d, want 2", m.Warps)
	}
	if wee := m.WarpExecutionEfficiency(V100()); wee >= 0.99 {
		t.Fatalf("partial warp should lower efficiency, got %v", wee)
	}
}

func TestRetInsideDivergentRegion(t *testing.T) {
	// Half the threads return from inside a divergent branch; the rest must
	// still complete the loop correctly.
	src := `
kernel rd(long* restrict out) {
  long i = (long)tid();
  if ((i & 1) != 0) {
    out[i] = -1;
    return;
  }
  long acc = 0;
  for (long k = 0; k < 10; k++) {
    acc += i + k;
  }
  out[i] = acc;
}
`
	p := build(t, src, pipeline.Options{Config: pipeline.Baseline, DisableIfConvert: true})
	mem := interp.NewMemory(8 * 32)
	if _, err := Run(p, []interp.Value{interp.IntVal(0)}, mem, Launch{GridDim: 1, BlockDim: 32}, V100()); err != nil {
		t.Fatalf("sim: %v", err)
	}
	for i := int64(0); i < 32; i++ {
		want := int64(-1)
		if i&1 == 0 {
			want = 10*i + 45
		}
		if got := mem.I64(0, i); got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestArgumentCountMismatch(t *testing.T) {
	p := build(t, axpySrc, pipeline.Options{Config: pipeline.Baseline})
	_, err := Run(p, []interp.Value{interp.IntVal(0)}, interp.NewMemory(64), Launch{GridDim: 1, BlockDim: 32}, V100())
	if err == nil {
		t.Fatalf("no error for wrong arg count")
	}
}

func TestOOBReportsError(t *testing.T) {
	src := `
kernel oob(long* restrict out) {
  out[1000000] = 1;
}
`
	p := build(t, src, pipeline.Options{Config: pipeline.Baseline})
	_, err := Run(p, []interp.Value{interp.IntVal(0)}, interp.NewMemory(64), Launch{GridDim: 1, BlockDim: 1}, V100())
	if err == nil {
		t.Fatalf("out-of-bounds store not reported")
	}
}
