// Package gpusim executes VPTX programs under a SIMT machine model: 32-wide
// warps in lockstep, a reconvergence stack driven by immediate
// post-dominators, a coalescing global-memory model, and an instruction
// cache whose misses model the fetch stalls the paper observes on heavily
// unrolled-and-unmerged code. It produces the nvprof-style counters the
// paper's in-depth analysis uses: inst_misc, inst_control,
// warp_execution_efficiency, stall_inst_fetch, gld_transactions, and IPC.
package gpusim

// DeviceConfig parameterizes the simulated GPU.
type DeviceConfig struct {
	// WarpSize is the SIMT width (32 on all NVIDIA parts).
	WarpSize int
	// NumSMs divides total warp cycles into wall-clock kernel time.
	NumSMs int
	// ClockGHz converts cycles to time.
	ClockGHz float64
	// MemLoadLatency is the raw latency of a global load; dependent uses
	// expose a StallExposure fraction of it (the rest is hidden by other
	// warps).
	MemLoadLatency float64
	// StallExposure is the fraction of dependency-stall cycles that are not
	// hidden by other resident warps (scoreboard model).
	StallExposure float64
	// MemPerTransaction is the additional cost of each 32-byte memory
	// transaction a (possibly uncoalesced) warp access splits into.
	MemPerTransaction int64
	// SegmentBytes is the coalescing granularity.
	SegmentBytes int64
	// ICacheLineInstrs is the number of instructions per icache line.
	ICacheLineInstrs int
	// ICacheLines is the capacity of the (LRU) instruction cache in lines.
	ICacheLines int
	// ICacheMissCycles is the fetch stall charged per icache miss.
	ICacheMissCycles int64
	// ITSOverlap models Volta's independent thread scheduling: divergent
	// sub-warp instructions overlap with other sub-warps and warps, so a
	// warp instruction with few active lanes costs less than a full-width
	// one. Effective issue cost = issue * (1 - ITSOverlap*(1 - active/32)).
	// 0 reproduces pre-Volta lockstep serialization.
	ITSOverlap float64
	// MaxWarpSteps bounds the instructions a single warp may execute before
	// the run is abandoned with ErrCycleBudget. 0 selects the package-level
	// MaxWarpSteps default, which no terminating kernel approaches; the
	// fuzzer sets a small budget so a miscompiled loop fails fast instead
	// of hanging the campaign.
	MaxWarpSteps int64
	// Policy selects the divergence-management backend. The zero value is
	// the IPDOM reconvergence stack (the original model), so existing
	// DeviceConfig literals are unaffected. See PolicyKind and the device
	// registry (registry.go) for the other backends.
	Policy PolicyKind
	// Exec selects the host execution backend. It changes simulation speed
	// only — metrics, profiles, and memory are byte-identical across
	// backends — so unlike Policy it is not part of the modelled machine.
	// The zero value is the dispatch-switch core; registry devices default
	// to the ~2.4x-faster threaded core. See ExecKind (exec.go).
	Exec ExecKind
}

// V100 returns a configuration loosely modelled after the NVIDIA V100 the
// paper evaluates on: 80 SMs at 1.38 GHz, a ~12 KiB L1 instruction cache,
// and effective memory latencies assuming reasonable occupancy.
func V100() DeviceConfig {
	return DeviceConfig{
		WarpSize:          32,
		NumSMs:            80,
		ClockGHz:          1.38,
		MemLoadLatency:    160,
		StallExposure:     0.12,
		MemPerTransaction: 2,
		SegmentBytes:      32,
		ICacheLineInstrs:  8,
		ICacheLines:       192, // 192 lines * 8 instrs * 8 B = 12 KiB
		ICacheMissCycles:  16,
		ITSOverlap:        0.85,
		Exec:              ExecThreaded,
	}
}

// Metrics aggregates the dynamic counters of one kernel launch.
type Metrics struct {
	Cycles       int64
	WarpInstrs   int64
	ThreadInstrs int64
	// ClassThread counts per-thread executed instructions per class
	// (indexed by codegen.Class): nvprof's inst_misc is ClassThread[Misc],
	// inst_control is ClassThread[Control].
	ClassThread [5]int64
	// ActiveSum accumulates the number of active threads per issued warp
	// instruction; with WarpInstrs it yields warp_execution_efficiency.
	ActiveSum int64

	GldTransactions int64
	GstTransactions int64
	GldBytes        int64
	GstBytes        int64
	StallInstFetch  int64 // cycles lost to instruction fetch
	DepStallCycles  int64 // exposed dependency-stall cycles (scoreboard)
	Warps           int64
}

// IPC is thread-instructions retired per cycle — the throughput measure the
// paper reports increasing by 1.88x on XSBench under u&u.
func (m *Metrics) IPC() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.ThreadInstrs) / float64(m.Cycles)
}

// WarpExecutionEfficiency is the average fraction of active threads per
// issued warp instruction (nvprof warp_execution_efficiency).
func (m *Metrics) WarpExecutionEfficiency(cfg DeviceConfig) float64 {
	if m.WarpInstrs == 0 {
		return 0
	}
	return float64(m.ActiveSum) / float64(m.WarpInstrs*int64(cfg.WarpSize))
}

// StallInstFetchPct is the fraction of cycles lost to instruction fetch.
func (m *Metrics) StallInstFetchPct() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.StallInstFetch) / float64(m.Cycles)
}

// KernelMillis converts accumulated warp cycles into wall-clock kernel time,
// spreading warps across the SMs.
func (m *Metrics) KernelMillis(cfg DeviceConfig) float64 {
	perSM := float64(m.Cycles) / float64(cfg.NumSMs)
	return perSM / (cfg.ClockGHz * 1e6)
}

// Add accumulates other into m (used when sampling scales partial runs).
func (m *Metrics) Add(o *Metrics) {
	m.Cycles += o.Cycles
	m.WarpInstrs += o.WarpInstrs
	m.ThreadInstrs += o.ThreadInstrs
	for i := range m.ClassThread {
		m.ClassThread[i] += o.ClassThread[i]
	}
	m.ActiveSum += o.ActiveSum
	m.GldTransactions += o.GldTransactions
	m.GstTransactions += o.GstTransactions
	m.GldBytes += o.GldBytes
	m.GstBytes += o.GstBytes
	m.StallInstFetch += o.StallInstFetch
	m.DepStallCycles += o.DepStallCycles
	m.Warps += o.Warps
}

// Scale multiplies all counters by k (sampling extrapolation).
func (m *Metrics) Scale(k float64) {
	mul := func(v *int64) { *v = int64(float64(*v) * k) }
	mul(&m.Cycles)
	mul(&m.WarpInstrs)
	mul(&m.ThreadInstrs)
	for i := range m.ClassThread {
		mul(&m.ClassThread[i])
	}
	mul(&m.ActiveSum)
	mul(&m.GldTransactions)
	mul(&m.GstTransactions)
	mul(&m.GldBytes)
	mul(&m.GstBytes)
	mul(&m.StallInstFetch)
	mul(&m.DepStallCycles)
	mul(&m.Warps)
}
