package gpusim

import (
	"math"

	"uu/internal/ir"
)

// This file holds the single scalar implementation of every decoded
// compute/setp/conversion opcode. Three consumers share it: the scalar
// fallback of the switch core (evalScalar), the per-lane loops of the
// switch core's dispatch arms, and the generic closures of the
// threaded-code compiler (threaded.go). Keeping one kernel per op is what
// makes the two executors byte-identical by construction — there is no
// second implementation to drift.

// evalICmp compares two canonically stored integers under pred. Unsigned
// predicates compare the operands zero-extended from their declared width
// (aux is that width's mask); everything else compares the sign-extended
// canonical form directly.
func evalICmp(pred ir.Pred, aux uint64, a, b int64) bool {
	switch pred {
	case ir.EQ:
		return a == b
	case ir.NE:
		return a != b
	case ir.SLT:
		return a < b
	case ir.SLE:
		return a <= b
	case ir.SGT:
		return a > b
	case ir.SGE:
		return a >= b
	case ir.ULT:
		return uint64(a)&aux < uint64(b)&aux
	case ir.ULE:
		return uint64(a)&aux <= uint64(b)&aux
	case ir.UGT:
		return uint64(a)&aux > uint64(b)&aux
	case ir.UGE:
		return uint64(a)&aux >= uint64(b)&aux
	}
	return false
}

// evalFCmp compares two floats under an ordered predicate.
func evalFCmp(pred ir.Pred, a, b float64) bool {
	switch pred {
	case ir.OEQ:
		return a == b
	case ir.ONE:
		return a != b
	case ir.OLT:
		return a < b
	case ir.OLE:
		return a <= b
	case ir.OGT:
		return a > b
	case ir.OGE:
		return a >= b
	}
	return false
}

// evalIntOp executes one integer compute op (xAdd..xSMax) on canonically
// stored operands and returns the canonically truncated result. Division
// and remainder by zero yield 0 (the machine traps are out of scope).
func evalIntOp(op execOp, trunc uint8, aux uint64, a, b int64) int64 {
	var r int64
	switch op {
	case xAdd:
		r = a + b
	case xSub:
		r = a - b
	case xMul:
		r = a * b
	case xSDiv:
		if b != 0 {
			r = a / b
		}
	case xUDiv:
		if b != 0 {
			r = int64(toUTag(trunc, a) / toUTag(trunc, b))
		}
	case xSRem:
		if b != 0 {
			r = a % b
		}
	case xURem:
		if b != 0 {
			r = int64(toUTag(trunc, a) % toUTag(trunc, b))
		}
	case xShl:
		r = a << (uint64(b) & aux)
	case xLShr:
		r = int64(toUTag(trunc, a) >> (uint64(b) & aux))
	case xAShr:
		r = a >> (uint64(b) & aux)
	case xAnd:
		r = a & b
	case xOr:
		r = a | b
	case xXor:
		r = a ^ b
	case xSMin:
		r = min(a, b)
	case xSMax:
		r = max(a, b)
	}
	return truncTag(trunc, r)
}

// evalFloatOp executes one float compute op (xFAdd..xFloor); unary ops
// ignore b. rnd rounds the result to f32 precision.
func evalFloatOp(op execOp, rnd bool, a, b float64) float64 {
	var r float64
	switch op {
	case xFAdd:
		r = a + b
	case xFSub:
		r = a - b
	case xFMul:
		r = a * b
	case xFDiv:
		r = a / b
	case xPow:
		r = math.Pow(a, b)
	case xFMin:
		r = math.Min(a, b)
	case xFMax:
		r = math.Max(a, b)
	case xSqrt:
		r = math.Sqrt(a)
	case xFAbs:
		r = math.Abs(a)
	case xExp:
		r = math.Exp(a)
	case xLog:
		r = math.Log(a)
	case xSin:
		r = math.Sin(a)
	case xCos:
		r = math.Cos(a)
	case xFloor:
		r = math.Floor(a)
	}
	if rnd {
		r = float64(float32(r))
	}
	return r
}

// evalConvI executes an integer-result conversion (xTrunc/xZExt/xSExt/
// xFPToSI). aI and aF are the operand in both domains; each conversion
// reads only the domain its source type implies.
func evalConvI(op execOp, trunc uint8, aux uint64, aI int64, aF float64) int64 {
	switch op {
	case xTrunc:
		return truncTag(trunc, aI)
	case xZExt:
		// aux masks to the recorded source width — exact for every source
		// type, unlike the old 0/1-value heuristic.
		return int64(uint64(aI) & aux)
	case xSExt:
		return aI
	case xFPToSI:
		if math.IsNaN(aF) || math.IsInf(aF, 0) {
			return 0
		}
		return truncTag(trunc, int64(aF))
	}
	return 0
}

// evalConvF executes a float-result conversion (xSIToFP/xFPExt/xFPTrunc).
func evalConvF(op execOp, rnd bool, aI int64, aF float64) float64 {
	var r float64
	switch op {
	case xSIToFP:
		r = float64(aI)
	case xFPExt, xFPTrunc:
		r = aF
	}
	if rnd {
		r = float64(float32(r))
	}
	return r
}
