package gpusim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"time"

	"uu/internal/codegen"
	"uu/internal/interp"
	"uu/internal/ir"
	"uu/internal/remark"
)

// Launch describes the 1-D kernel launch geometry.
type Launch struct {
	GridDim  int // number of thread blocks
	BlockDim int // threads per block
	// SampleWarps, when > 0, simulates only the first SampleWarps warps of
	// the grid and scales all metrics by total/sampled. The warps that are
	// skipped do not touch memory, so sampling is only valid for
	// verification-free timing sweeps.
	SampleWarps int
}

// Threads returns the total thread count.
func (l Launch) Threads() int { return l.GridDim * l.BlockDim }

// MaxWarpSteps bounds per-warp execution when DeviceConfig.MaxWarpSteps is
// zero. It is generous enough that no terminating kernel in this repository
// comes near it; a kernel that exhausts it is looping forever.
const MaxWarpSteps = int64(1) << 34

// ErrCycleBudget reports that a warp executed more instructions than the
// configured step budget allows. A miscompiled terminator or a fuzzer-built
// kernel can loop forever; the budget turns that hang into a diagnosable
// error (match with errors.Is).
var ErrCycleBudget = errors.New("warp step budget exhausted")

// Run executes the program over the launch grid against mem (shared by all
// threads, as global device memory is) and returns the aggregated metrics.
// Warps execute sequentially, which is deterministic and race-free for the
// data-parallel kernels in this repository; __syncthreads is a no-op under
// this schedule (kernels relying on cross-warp shared-memory communication
// are out of scope).
func Run(p *codegen.Program, args []interp.Value, mem *interp.Memory, launch Launch, cfg DeviceConfig) (*Metrics, error) {
	return RunWorkers(p, args, mem, launch, cfg, 1)
}

// RunWorkers is Run with an explicit warp-scheduling worker count
// (workers <= 0 means GOMAXPROCS). Metrics and final memory are identical
// for every worker count — workers only changes wall clock. See
// parallel.go for how the parallel schedule reproduces the sequential
// one exactly (and falls back to it when it cannot).
//
// Two parallel-mode caveats, both confined to runs that fail anyway: on
// error, shared memory is left unmodified (the sequential schedule stops
// at the failing warp with every earlier warp's writes applied), and the
// error returned is deterministically the failing warp with the lowest
// index. Every error path discards results, so no caller observes the
// difference.
func RunWorkers(p *codegen.Program, args []interp.Value, mem *interp.Memory, launch Launch, cfg DeviceConfig, workers int) (*Metrics, error) {
	return RunWorkersTraced(p, args, mem, launch, cfg, workers, nil, 0)
}

// RunWorkersTraced is RunWorkers additionally recording trace spans (the
// launch, each warp batch) and a final metrics counter sample into tr on
// lane tid. A nil tr disables all trace work; metrics are byte-identical
// with and without tracing.
func RunWorkersTraced(p *codegen.Program, args []interp.Value, mem *interp.Memory, launch Launch, cfg DeviceConfig, workers int, tr *remark.Trace, tid int) (*Metrics, error) {
	return RunWorkersProfiled(p, args, mem, launch, cfg, workers, tr, tid, nil)
}

// RunWorkersProfiled is RunWorkersTraced additionally accumulating per-PC
// hotspot counters into prof, which must be nil or sized for p
// (NewProfile). Profiles, like metrics, are byte-identical for every worker
// count: the optimistic parallel schedule merges integer per-warp
// contributions and replaces the warm-cache contribution of each
// first-touch warp with its exact re-run (see parallel.go). A nil prof
// disables all profile work.
func RunWorkersProfiled(p *codegen.Program, args []interp.Value, mem *interp.Memory, launch Launch, cfg DeviceConfig, workers int, tr *remark.Trace, tid int, prof *Profile) (*Metrics, error) {
	return RunWorkersProfiledCtx(context.Background(), p, args, mem, launch, cfg, workers, tr, tid, prof)
}

// RunWorkersProfiledCtx is RunWorkersProfiled under a context: cancellation
// (a request deadline, a client disconnect, SIGINT) is checked at warp-block
// boundaries alongside the MaxWarpSteps budget, so a runaway or merely slow
// simulation stops within one basic block of the cancel instead of running
// to completion. The returned error wraps ctx's error (match with
// errors.Is(err, context.Canceled/DeadlineExceeded)); like every error path,
// cancellation discards metrics and leaves shared memory unmodified in
// parallel mode. A Background (or otherwise non-cancelable) context costs
// one nil check per block.
func RunWorkersProfiledCtx(ctx context.Context, p *codegen.Program, args []interp.Value, mem *interp.Memory, launch Launch, cfg DeviceConfig, workers int, tr *remark.Trace, tid int, prof *Profile) (*Metrics, error) {
	if len(args) != len(p.ParamRegs) {
		return nil, fmt.Errorf("gpusim: kernel %s expects %d args, got %d", p.Name, len(p.ParamRegs), len(args))
	}
	dp, err := decoded(p)
	if err != nil {
		return nil, err
	}
	total := launch.Threads()
	totalWarps := (total + cfg.WarpSize - 1) / cfg.WarpSize
	simWarps := totalWarps
	if launch.SampleWarps > 0 && launch.SampleWarps < totalWarps {
		simWarps = launch.SampleWarps
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > simWarps {
		workers = simWarps
	}
	fits := dp.numLines(cfg.ICacheLineInstrs) <= cfg.ICacheLines
	m := &Metrics{}
	start := time.Now()
	if workers <= 1 || !fits {
		err = runSequential(ctx, dp, args, mem, launch, cfg, simWarps, total, m, tr, tid, prof)
	} else {
		err = runParallel(ctx, dp, args, mem, launch, cfg, simWarps, total, workers, m, tr, tid, prof)
	}
	if tr.Enabled() {
		tr.Complete(tid, "sim:"+dp.name, "gpusim", start, time.Since(start), map[string]any{
			"warps":   simWarps,
			"workers": workers,
		})
	}
	if err != nil {
		return nil, err
	}
	if simWarps < totalWarps {
		k := float64(totalWarps) / float64(simWarps)
		m.Scale(k)
		if prof != nil {
			prof.Scale(k)
		}
	}
	if tr.Enabled() {
		tr.Counter(tid, "gpusim:"+dp.name, map[string]float64{
			"cycles":                    float64(m.Cycles),
			"warp_instrs":               float64(m.WarpInstrs),
			"thread_instrs":             float64(m.ThreadInstrs),
			"warp_execution_efficiency": m.WarpExecutionEfficiency(cfg),
			"gld_transactions":          float64(m.GldTransactions),
			"gst_transactions":          float64(m.GstTransactions),
			"stall_inst_fetch":          float64(m.StallInstFetch),
			"dep_stall_cycles":          float64(m.DepStallCycles),
		})
	}
	return m, nil
}

// simBatchWarps is how many warps one sequential-mode trace span covers.
const simBatchWarps = 256

func warpBounds(wi, warpSize, total int) (first, count int) {
	first = wi * warpSize
	count = warpSize
	if first+count > total {
		count = total - first
	}
	return first, count
}

func bitWords(n int) int { return (n + 63) / 64 }

func runSequential(ctx context.Context, dp *decodedProgram, args []interp.Value, mem *interp.Memory, launch Launch, cfg DeviceConfig, simWarps, total int, m *Metrics, tr *remark.Trace, tid int, prof *Profile) error {
	w := newWarpSim(dp, cfg, mem)
	w.setContext(ctx)
	w.prof = prof
	if numLines := dp.numLines(cfg.ICacheLineInstrs); numLines <= cfg.ICacheLines {
		w.fetchMode = fetchBitset
		w.touched = make([]uint64, bitWords(numLines))
	} else {
		w.fetchMode = fetchLRU
		w.lru.init(numLines, cfg.ICacheLines)
	}
	batchStart := time.Time{}
	if tr.Enabled() {
		batchStart = time.Now()
	}
	for wi := 0; wi < simWarps; wi++ {
		first, count := warpBounds(wi, cfg.WarpSize, total)
		if err := w.run(args, launch, first, count, m); err != nil {
			return err
		}
		m.Warps++
		if tr.Enabled() && ((wi+1)%simBatchWarps == 0 || wi == simWarps-1) {
			lo := wi + 1 - (wi % simBatchWarps) - 1
			tr.Complete(tid, fmt.Sprintf("warps[%d:%d]", lo, wi+1), "gpusim", batchStart,
				time.Since(batchStart), nil)
			batchStart = time.Now()
		}
	}
	return nil
}

// Instruction-fetch accounting modes; see RunWorkers.
const (
	fetchWarm   uint8 = iota // record touched lines, charge nothing
	fetchBitset              // miss = first touch (program fits the icache)
	fetchLRU                 // full LRU model (program overflows the icache)
)

type warpSim struct {
	dp  *decodedProgram
	cfg DeviceConfig
	mem *interp.Memory

	nregs int
	regs  []interp.Value // [lane*nregs + reg] (switch core only)
	ready []float64      // scoreboard: cycle at which each register's value is available

	// Threaded-core state (cfg.Exec == ExecThreaded; see threaded.go). The
	// SoA register files store each register as WarpSize consecutive lanes
	// so block closures run contiguous 32-lane inner loops; regsI/regsF
	// replace the boxed file above, and the extra registers past
	// dp.numRegs hold the program's pooled immediates, broadcast once at
	// construction.
	tp      *threadedProgram
	laneW   int       // stride between registers in the SoA files
	nLanes  int       // threads in the current warp
	runMask uint32    // full-warp mask of the current warp
	regsI   []int64   // [reg*laneW + lane]
	regsF   []float64 // [reg*laneW + lane]
	ntidV   int64
	nctaidV int64
	m       *Metrics // metrics of the warp in flight (closures append here)
	memErr  error    // out-of-bounds fault raised inside a closure
	// Per-block control-flow outcome, written by terminator closures and
	// read back by the block loop exactly as the switch core's locals are.
	nextPC   int
	branched bool
	exited   uint32
	brTaken  uint32
	brNot    uint32
	// eng is the divergence-management backend (DeviceConfig.Policy): it
	// owns the reconvergence state and decides which (block, mask) runs
	// next; the executor below only runs whole blocks and reports each
	// block's control-flow outcome back to it.
	eng policyEngine

	// instruction cache state, interpreted per fetchMode
	lines     []int32 // global instruction index -> icache line
	fetchMode uint8
	touched   []uint64
	lru       lruICache
	// blockSeen[b] records (threaded core, fetchBitset mode only) that every
	// line of block b has been fetched once; touched bits never clear, so
	// once set the whole per-instruction fetch check provably charges zero
	// and steady-state blocks skip it. Never set in warm/LRU modes.
	blockSeen []bool

	lanesTID []int32
	lanesCTA []int32
	addrBuf  []int64 // scratch: active lanes' addresses, lane order
	segBuf   []segSpan

	// optimistic-parallel instrumentation (nil in sequential mode):
	// per-warp byte ranges read/written and the ordered store log the
	// audit pass replays — see parallel.go
	rSet     *spanSet
	wSet     *spanSet
	writeLog *[]memWrite

	// prof, when non-nil, accumulates per-PC hotspot counters. The arrays
	// are preallocated (NewProfile), so profiling keeps the warp loop
	// allocation-free; a nil prof costs one predictable branch per site.
	prof *Profile

	// done is the cancellation signal of the launch's context, polled at
	// block boundaries (see checkCanceled). A nil done (Background context,
	// benchmarks, tests) reduces the whole check to one nil comparison per
	// block; ctx is retained only to report the cancellation cause.
	done <-chan struct{}
	ctx  context.Context

	scale  [33]float64 // issue scale by active-lane count
	latTab [4]float64  // scoreboard latency by latClass
}

func newWarpSim(dp *decodedProgram, cfg DeviceConfig, mem *interp.Memory) *warpSim {
	w := &warpSim{dp: dp, cfg: cfg, mem: mem, nregs: dp.numRegs}
	if cfg.Exec == ExecThreaded {
		tp := dp.threadedProg()
		w.tp = tp
		w.laneW = cfg.WarpSize
		w.regsI = make([]int64, cfg.WarpSize*tp.numRegs)
		w.regsF = make([]float64, cfg.WarpSize*tp.numRegs)
		w.blockSeen = make([]bool, len(dp.blockStart))
		// Pooled immediates live past dp.numRegs and never change: fill
		// every lane once, here; per-warp resets only clear the real
		// registers below them.
		for ci, v := range tp.consts {
			base := (dp.numRegs + ci) * cfg.WarpSize
			for lane := 0; lane < cfg.WarpSize; lane++ {
				w.regsI[base+lane] = v.I
				w.regsF[base+lane] = v.F
			}
		}
	} else {
		w.regs = make([]interp.Value, cfg.WarpSize*dp.numRegs)
	}
	w.ready = make([]float64, dp.numRegs)
	w.eng = newPolicyEngine(cfg.Policy, dp)
	w.lines = dp.lines(cfg.ICacheLineInstrs)
	w.lanesTID = make([]int32, cfg.WarpSize)
	w.lanesCTA = make([]int32, cfg.WarpSize)
	w.addrBuf = make([]int64, cfg.WarpSize)
	w.segBuf = make([]segSpan, 0, cfg.WarpSize)
	for n := 0; n <= cfg.WarpSize && n < len(w.scale); n++ {
		frac := float64(n) / float64(cfg.WarpSize)
		w.scale[n] = 1 - cfg.ITSOverlap*(1-frac)
	}
	w.latTab = [4]float64{cfg.MemLoadLatency, 24, 20, 5}
	return w
}

// setContext arms block-boundary cancellation polling for this warp
// simulator. Background and other never-canceled contexts arm nothing
// (Done() returns nil), keeping the hot loop free of channel operations.
func (w *warpSim) setContext(ctx context.Context) {
	if ctx == nil {
		return
	}
	w.done = ctx.Done()
	w.ctx = ctx
}

// canceled reports whether the launch's context has fired. It is called at
// block boundaries, next to the step-budget check: both turn unbounded work
// (an infinite loop, a caller that went away) into a prompt diagnosable
// error instead of a stuck warp.
func (w *warpSim) canceled() bool {
	if w.done == nil {
		return false
	}
	select {
	case <-w.done:
		return true
	default:
		return false
	}
}

// cancelErr builds the error reported for a canceled warp, wrapping the
// context's cause so callers can errors.Is against context.Canceled or
// context.DeadlineExceeded.
func (w *warpSim) cancelErr(steps int64) error {
	return fmt.Errorf("gpusim: %s canceled after %d steps: %w", w.dp.name, steps, w.ctx.Err())
}

// srcVal reads an operand for the lane whose register block starts at
// base. It is a free function over the register slice (rather than a
// method) so the hot loops below can hoist w.regs into a local and keep
// the read inlinable.
func srcVal(regs []interp.Value, base int, s *dSrc) interp.Value {
	if s.reg < 0 {
		return s.imm
	}
	return regs[base+int(s.reg)]
}

// run executes one warp on the backend cfg.Exec selected. The steady-state
// path of both backends performs no heap allocations: all per-warp state
// lives in reusable buffers sized at construction (the reconvergence stack
// may grow once on unusually deep divergence, then keeps its capacity).
func (w *warpSim) run(args []interp.Value, launch Launch, firstThread, count int, m *Metrics) error {
	if w.tp != nil {
		return w.runThreaded(args, launch, firstThread, count, m)
	}
	return w.runSwitch(args, launch, firstThread, count, m)
}

// fetchStallSlow is the icache model for the fetchWarm and fetchLRU
// fetch modes, returning the stall cycles to charge. The fetchBitset fast
// path is spelled out at both executors' per-instruction call sites (it is
// too hot to pay a function call), identically, so the backends price
// fetches the same way.
func (w *warpSim) fetchStallSlow(line int32) int64 {
	if w.fetchMode == fetchWarm {
		w.touched[line>>6] |= 1 << uint(line&63)
		return 0
	}
	if w.lru.fetch(line) {
		return w.cfg.ICacheMissCycles
	}
	return 0
}

// runSwitch is the pre-decoded dispatch-switch core (ExecSwitch).
func (w *warpSim) runSwitch(args []interp.Value, launch Launch, firstThread, count int, m *Metrics) error {
	cfg := w.cfg
	dp := w.dp
	nr := w.nregs
	prof := w.prof
	// Reset per-warp state.
	for lane := 0; lane < count; lane++ {
		regs := w.regs[lane*nr : lane*nr+nr]
		for i := range regs {
			regs[i] = interp.Value{}
		}
		for pi, r := range dp.paramRegs {
			regs[r] = args[pi]
		}
		gid := firstThread + lane
		w.lanesTID[lane] = int32(gid % launch.BlockDim)
		w.lanesCTA[lane] = int32(gid / launch.BlockDim)
	}
	for i := range w.ready {
		w.ready[i] = 0
	}
	// 32 here is the mask word width, not the warp size: count is at most
	// cfg.WarpSize, so narrow-warp devices (WarpSize < 32) always take the
	// partial-mask path and full warps on them get exactly WarpSize bits.
	fullMask := ^uint32(0)
	if count < 32 {
		fullMask = 1<<uint(count) - 1
	}
	ntid := interp.IntVal(int64(launch.BlockDim))
	nctaid := interp.IntVal(int64(launch.GridDim))

	eng := w.eng
	eng.reset(prof, fullMask)
	var steps int64
	budget := cfg.MaxWarpSteps
	if budget <= 0 {
		budget = MaxWarpSteps
	}
	var cycles float64   // warp issue clock
	var stallAcc float64 // exposed dependency stalls (metrics only)
	for {
		blkIdx, active, ok := eng.next()
		if !ok {
			break
		}
		if w.canceled() {
			return w.cancelErr(steps)
		}
		start, end := dp.blockStart[blkIdx], dp.blockEnd[blkIdx]
		nActive := bits.OnesCount32(active)
		iss := w.scale[nActive]
		var brTaken, brNot uint32
		branched := false
		exited := uint32(0)
		nextPC := -2
		for gi := start; gi < end; gi++ {
			in := &dp.instrs[gi]
			steps++
			if steps > budget {
				return fmt.Errorf("gpusim: %s after %d steps: %w", dp.name, steps-1, ErrCycleBudget)
			}
			// Fetch: icache model on the global instruction index.
			var fc int64
			if line := w.lines[gi]; w.fetchMode == fetchBitset {
				word, bit := line>>6, uint64(1)<<uint(line&63)
				if w.touched[word]&bit == 0 {
					w.touched[word] |= bit
					fc = cfg.ICacheMissCycles
				}
			} else {
				fc = w.fetchStallSlow(line)
			}
			if fc != 0 {
				m.StallInstFetch += fc
				cycles += float64(fc)
				if prof != nil {
					prof.Counters[ProfFetchStall][gi] += fc
				}
			}

			m.WarpInstrs++
			m.ActiveSum += int64(nActive)
			m.ThreadInstrs += int64(nActive)
			m.ClassThread[in.class] += int64(nActive)
			if prof != nil {
				prof.Counters[ProfWarpExecs][gi]++
				prof.Counters[ProfThreadExecs][gi] += int64(nActive)
			}

			// Scoreboard: charge issue plus the exposed fraction of
			// dependency stalls. Sub-warp stalls overlap with sibling paths
			// and other warps (independent thread scheduling), so they scale
			// like issue.
			dep := 0.0
			for si := uint8(0); si < in.nSrcs; si++ {
				if r := in.srcs[si].reg; r >= 0 {
					if t := w.ready[r]; t > dep {
						dep = t
					}
				}
			}
			if stall := dep - cycles; stall > 0 {
				exposed := stall * cfg.StallExposure * iss
				cycles += exposed
				stallAcc += exposed
				if prof != nil {
					prof.Counters[ProfDepStall][gi] += profFP(exposed)
				}
			}
			cycles += in.issue * iss
			if prof != nil {
				prof.Counters[ProfIssueCycles][gi] += profFP(in.issue * iss)
			}
			if in.dst >= 0 {
				w.ready[in.dst] = cycles + w.latTab[in.latClass]
			}

			switch in.exec {
			case xBra:
				nextPC = int(in.t0)
			case xRet:
				exited = active
				nextPC = -1
			case xCondBra:
				s := &in.srcs[0]
				for rem := active; rem != 0; rem &= rem - 1 {
					lane := bits.TrailingZeros32(rem)
					if srcVal(w.regs, lane*nr, s).I != 0 {
						brTaken |= 1 << uint(lane)
					} else {
						brNot |= 1 << uint(lane)
					}
				}
				branched = true
			case xLd:
				n := w.gatherAddrs(active, &in.srcs[0])
				if w.rSet != nil {
					lo, hi := addrRange(w.addrBuf[:n], in.memSize)
					w.rSet.add(lo, hi)
				}
				cost, ntx := w.access(n, in.memSize, true, m)
				cycles += cost
				if prof != nil {
					prof.Counters[ProfMemTransactions][gi] += ntx
					prof.Counters[ProfMemIdeal][gi] += idealTransactions(n, in.memSize, cfg.SegmentBytes)
				}
				dst := int(in.dst)
				k := ir.Kind(in.memKind)
				ai := 0
				for rem := active; rem != 0; rem &= rem - 1 {
					lane := bits.TrailingZeros32(rem)
					addr := w.addrBuf[ai]
					ai++
					v, ok := w.mem.LoadKind(k, in.memSize, addr)
					if !ok {
						_, err := w.mem.Load(in.typ, addr)
						return fmt.Errorf("gpusim: %s: %w", dp.name, err)
					}
					w.regs[lane*nr+dst] = v
				}
			case xSt:
				n := w.gatherAddrs(active, &in.srcs[1])
				if w.wSet != nil {
					lo, hi := addrRange(w.addrBuf[:n], in.memSize)
					w.wSet.add(lo, hi)
				}
				cost, ntx := w.access(n, in.memSize, false, m)
				cycles += cost
				if prof != nil {
					prof.Counters[ProfMemTransactions][gi] += ntx
					prof.Counters[ProfMemIdeal][gi] += idealTransactions(n, in.memSize, cfg.SegmentBytes)
				}
				k := ir.Kind(in.memKind)
				ai := 0
				for rem := active; rem != 0; rem &= rem - 1 {
					lane := bits.TrailingZeros32(rem)
					addr := w.addrBuf[ai]
					ai++
					v := srcVal(w.regs, lane*nr, &in.srcs[0])
					if !w.mem.StoreKind(k, in.memSize, addr, v) {
						err := w.mem.Store(in.typ, addr, v)
						return fmt.Errorf("gpusim: %s: %w", dp.name, err)
					}
					if w.writeLog != nil {
						*w.writeLog = append(*w.writeLog, memWrite{addr: addr, val: v, size: int32(in.memSize), kind: in.memKind})
					}
				}
			case xBar:
				// No-op under sequential warp scheduling.
			case xTID:
				dst := int(in.dst)
				for rem := active; rem != 0; rem &= rem - 1 {
					lane := bits.TrailingZeros32(rem)
					w.regs[lane*nr+dst] = interp.IntVal(int64(w.lanesTID[lane]))
				}
			case xNTID:
				dst := int(in.dst)
				for rem := active; rem != 0; rem &= rem - 1 {
					lane := bits.TrailingZeros32(rem)
					w.regs[lane*nr+dst] = ntid
				}
			case xCTAID:
				dst := int(in.dst)
				for rem := active; rem != 0; rem &= rem - 1 {
					lane := bits.TrailingZeros32(rem)
					w.regs[lane*nr+dst] = interp.IntVal(int64(w.lanesCTA[lane]))
				}
			case xNCTAID:
				dst := int(in.dst)
				for rem := active; rem != 0; rem &= rem - 1 {
					lane := bits.TrailingZeros32(rem)
					w.regs[lane*nr+dst] = nctaid
				}
			// The remaining cases are scalar per-lane ops. The frequent
			// ones get dedicated lane loops (dispatch once per
			// instruction, not once per lane); the long tail falls
			// through to evalScalar.
			case xMov:
				regs := w.regs
				dst := int(in.dst)
				if s := &in.srcs[0]; s.reg < 0 {
					v := s.imm
					for rem := active; rem != 0; rem &= rem - 1 {
						regs[bits.TrailingZeros32(rem)*nr+dst] = v
					}
				} else {
					sr := int(s.reg)
					for rem := active; rem != 0; rem &= rem - 1 {
						base := bits.TrailingZeros32(rem) * nr
						regs[base+dst] = regs[base+sr]
					}
				}
			case xSelp:
				regs := w.regs
				dst := int(in.dst)
				s0, s1, s2 := &in.srcs[0], &in.srcs[1], &in.srcs[2]
				for rem := active; rem != 0; rem &= rem - 1 {
					base := bits.TrailingZeros32(rem) * nr
					if srcVal(regs, base, s0).I != 0 {
						regs[base+dst] = srcVal(regs, base, s1)
					} else {
						regs[base+dst] = srcVal(regs, base, s2)
					}
				}
			case xSetpI:
				// Specialized like the arithmetic arms: the pred dispatch
				// is hoisted out of the lane loop (evalICmp is too big to
				// inline here and a call per lane costs ~7% on divergent
				// kernels); the generic kernel serves evalScalar and the
				// threaded core's unspecialized loops.
				regs := w.regs
				dst := int(in.dst)
				s0, s1 := &in.srcs[0], &in.srcs[1]
				pred, aux := in.pred, in.aux
				for rem := active; rem != 0; rem &= rem - 1 {
					base := bits.TrailingZeros32(rem) * nr
					a, b := srcVal(regs, base, s0).I, srcVal(regs, base, s1).I
					var r bool
					switch pred {
					case ir.EQ:
						r = a == b
					case ir.NE:
						r = a != b
					case ir.SLT:
						r = a < b
					case ir.SLE:
						r = a <= b
					case ir.SGT:
						r = a > b
					case ir.SGE:
						r = a >= b
					case ir.ULT:
						r = uint64(a)&aux < uint64(b)&aux
					case ir.ULE:
						r = uint64(a)&aux <= uint64(b)&aux
					case ir.UGT:
						r = uint64(a)&aux > uint64(b)&aux
					case ir.UGE:
						r = uint64(a)&aux >= uint64(b)&aux
					}
					regs[base+dst] = boolVal(r)
				}
			case xSExt:
				regs := w.regs
				dst := int(in.dst)
				s := &in.srcs[0]
				for rem := active; rem != 0; rem &= rem - 1 {
					base := bits.TrailingZeros32(rem) * nr
					regs[base+dst] = interp.IntVal(srcVal(regs, base, s).I)
				}
			case xAdd:
				regs := w.regs
				dst := int(in.dst)
				s0, s1 := &in.srcs[0], &in.srcs[1]
				tr := in.trunc
				for rem := active; rem != 0; rem &= rem - 1 {
					base := bits.TrailingZeros32(rem) * nr
					r := srcVal(regs, base, s0).I + srcVal(regs, base, s1).I
					regs[base+dst] = interp.IntVal(truncTag(tr, r))
				}
			case xSub:
				regs := w.regs
				dst := int(in.dst)
				s0, s1 := &in.srcs[0], &in.srcs[1]
				tr := in.trunc
				for rem := active; rem != 0; rem &= rem - 1 {
					base := bits.TrailingZeros32(rem) * nr
					r := srcVal(regs, base, s0).I - srcVal(regs, base, s1).I
					regs[base+dst] = interp.IntVal(truncTag(tr, r))
				}
			case xMul:
				regs := w.regs
				dst := int(in.dst)
				s0, s1 := &in.srcs[0], &in.srcs[1]
				tr := in.trunc
				for rem := active; rem != 0; rem &= rem - 1 {
					base := bits.TrailingZeros32(rem) * nr
					r := srcVal(regs, base, s0).I * srcVal(regs, base, s1).I
					regs[base+dst] = interp.IntVal(truncTag(tr, r))
				}
			case xAnd:
				regs := w.regs
				dst := int(in.dst)
				s0, s1 := &in.srcs[0], &in.srcs[1]
				tr := in.trunc
				for rem := active; rem != 0; rem &= rem - 1 {
					base := bits.TrailingZeros32(rem) * nr
					r := srcVal(regs, base, s0).I & srcVal(regs, base, s1).I
					regs[base+dst] = interp.IntVal(truncTag(tr, r))
				}
			case xShl:
				regs := w.regs
				dst := int(in.dst)
				s0, s1 := &in.srcs[0], &in.srcs[1]
				tr, aux := in.trunc, in.aux
				for rem := active; rem != 0; rem &= rem - 1 {
					base := bits.TrailingZeros32(rem) * nr
					r := srcVal(regs, base, s0).I << (uint64(srcVal(regs, base, s1).I) & aux)
					regs[base+dst] = interp.IntVal(truncTag(tr, r))
				}
			case xFAdd:
				regs := w.regs
				dst := int(in.dst)
				s0, s1 := &in.srcs[0], &in.srcs[1]
				rnd := in.rndF32
				for rem := active; rem != 0; rem &= rem - 1 {
					base := bits.TrailingZeros32(rem) * nr
					r := srcVal(regs, base, s0).F + srcVal(regs, base, s1).F
					if rnd {
						r = float64(float32(r))
					}
					regs[base+dst] = interp.FloatVal(r)
				}
			case xFSub:
				regs := w.regs
				dst := int(in.dst)
				s0, s1 := &in.srcs[0], &in.srcs[1]
				rnd := in.rndF32
				for rem := active; rem != 0; rem &= rem - 1 {
					base := bits.TrailingZeros32(rem) * nr
					r := srcVal(regs, base, s0).F - srcVal(regs, base, s1).F
					if rnd {
						r = float64(float32(r))
					}
					regs[base+dst] = interp.FloatVal(r)
				}
			case xFMul:
				regs := w.regs
				dst := int(in.dst)
				s0, s1 := &in.srcs[0], &in.srcs[1]
				rnd := in.rndF32
				for rem := active; rem != 0; rem &= rem - 1 {
					base := bits.TrailingZeros32(rem) * nr
					r := srcVal(regs, base, s0).F * srcVal(regs, base, s1).F
					if rnd {
						r = float64(float32(r))
					}
					regs[base+dst] = interp.FloatVal(r)
				}
			default:
				dst := int(in.dst)
				for rem := active; rem != 0; rem &= rem - 1 {
					lane := bits.TrailingZeros32(rem)
					base := lane * nr
					w.regs[base+dst] = w.evalScalar(in, base)
				}
			}
		}

		switch {
		case nextPC == -1: // ret
			eng.retire(exited)
		case branched:
			eng.branch(blkIdx, brTaken, brNot)
		default:
			eng.jump(nextPC)
		}
	}
	m.Cycles += int64(cycles + 0.5)
	m.DepStallCycles += int64(stallAcc + 0.5)
	return nil
}

// gatherAddrs evaluates the address operand for every active lane into
// addrBuf (in lane order) and returns how many there are.
func (w *warpSim) gatherAddrs(active uint32, s *dSrc) int {
	n := 0
	if s.reg < 0 {
		imm := s.imm.I
		for rem := active; rem != 0; rem &= rem - 1 {
			w.addrBuf[n] = imm
			n++
		}
		return n
	}
	r := int(s.reg)
	nr := w.nregs
	for rem := active; rem != 0; rem &= rem - 1 {
		lane := bits.TrailingZeros32(rem)
		w.addrBuf[n] = w.regs[lane*nr+r].I
		n++
	}
	return n
}

// addrRange returns the half-open byte range [lo, hi) covered by a warp
// memory access with the given per-lane addresses.
func addrRange(addrs []int64, size int64) (lo, hi int64) {
	lo, hi = addrs[0], addrs[0]
	for _, a := range addrs[1:] {
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	return lo, hi + size
}

// segSpan is the closed segment interval [first, last] one lane's access
// covers.
type segSpan struct {
	first, last int64
}

// access applies the coalescing model: the warp's addresses (the first n
// entries of addrBuf) split into SegmentBytes segments; each distinct
// segment is one transaction paying a bandwidth cost (latency is modelled
// by the scoreboard, not here). It returns the bandwidth cycles for the
// caller's clock plus the transaction count for the per-PC profile.
// Distinct segments are counted by sorting the per-lane segment intervals
// and sweeping their union — no per-access set.
func (w *warpSim) access(n int, size int64, isLoad bool, m *Metrics) (float64, int64) {
	sb := w.cfg.SegmentBytes
	segs := w.segBuf[:0]
	for _, a := range w.addrBuf[:n] {
		segs = append(segs, segSpan{a / sb, (a + size - 1) / sb})
	}
	// Insertion sort by first segment: n <= warp size and warps are
	// usually nearly sorted already.
	for i := 1; i < len(segs); i++ {
		s := segs[i]
		j := i - 1
		for j >= 0 && segs[j].first > s.first {
			segs[j+1] = segs[j]
			j--
		}
		segs[j+1] = s
	}
	var count int64
	covered := int64(math.MinInt64) // highest segment counted so far
	for _, s := range segs {
		if s.first > covered {
			count += s.last - s.first + 1
			covered = s.last
		} else if s.last > covered {
			count += s.last - covered
			covered = s.last
		}
	}
	bytes := int64(n) * size
	if isLoad {
		m.GldTransactions += count
		m.GldBytes += bytes
	} else {
		m.GstTransactions += count
		m.GstBytes += bytes
	}
	return float64(count * w.cfg.MemPerTransaction), count
}

// truncTag truncates v per the decoded truncation tag (the canonical
// in-register form: narrow ints are stored sign-extended, i1 as 0/1).
func truncTag(tag uint8, v int64) int64 {
	switch tag {
	case tI1:
		return v & 1
	case tI8:
		return int64(int8(v))
	case tI32:
		return int64(int32(v))
	}
	return v
}

// toUTag reinterprets a canonically stored value as unsigned at the
// width the truncation tag encodes.
func toUTag(tag uint8, v int64) uint64 {
	switch tag {
	case tI1:
		return uint64(v) & 1
	case tI8:
		return uint64(uint8(v))
	case tI32:
		return uint64(uint32(v))
	}
	return uint64(v)
}

func boolVal(r bool) interp.Value {
	if r {
		return interp.IntVal(1)
	}
	return interp.IntVal(0)
}

// evalScalar executes a decoded compute/setp/selp/mov/cvt instruction for
// the lane whose register block starts at base. All opcode semantics live
// in the shared kernels of ops.go.
func (w *warpSim) evalScalar(in *dInstr, base int) interp.Value {
	a := srcVal(w.regs, base, &in.srcs[0])
	switch in.exec {
	case xMov:
		return a
	case xSelp:
		if a.I != 0 {
			return srcVal(w.regs, base, &in.srcs[1])
		}
		return srcVal(w.regs, base, &in.srcs[2])
	case xSetpI:
		b := srcVal(w.regs, base, &in.srcs[1])
		return boolVal(evalICmp(in.pred, in.aux, a.I, b.I))
	case xSetpF:
		b := srcVal(w.regs, base, &in.srcs[1])
		return boolVal(evalFCmp(in.pred, a.F, b.F))
	case xTrunc, xZExt, xSExt, xFPToSI:
		return interp.IntVal(evalConvI(in.exec, in.trunc, in.aux, a.I, a.F))
	case xSIToFP, xFPExt, xFPTrunc:
		return interp.FloatVal(evalConvF(in.exec, in.rndF32, a.I, a.F))
	}
	if in.exec >= xFAdd { // tag order: float compute ops are the last group
		var b float64
		if in.nSrcs > 1 {
			b = srcVal(w.regs, base, &in.srcs[1]).F
		}
		return interp.FloatVal(evalFloatOp(in.exec, in.rndF32, a.F, b))
	}
	var b int64
	if in.nSrcs > 1 {
		b = srcVal(w.regs, base, &in.srcs[1]).I
	}
	return interp.IntVal(evalIntOp(in.exec, in.trunc, in.aux, a.I, b))
}
