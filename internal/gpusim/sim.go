package gpusim

import (
	"fmt"
	"math"

	"uu/internal/codegen"
	"uu/internal/interp"
	"uu/internal/ir"
)

// Launch describes the 1-D kernel launch geometry.
type Launch struct {
	GridDim  int // number of thread blocks
	BlockDim int // threads per block
	// SampleWarps, when > 0, simulates only the first SampleWarps warps of
	// the grid and scales all metrics by total/sampled. The warps that are
	// skipped do not touch memory, so sampling is only valid for
	// verification-free timing sweeps.
	SampleWarps int
}

// Threads returns the total thread count.
func (l Launch) Threads() int { return l.GridDim * l.BlockDim }

// MaxWarpSteps bounds per-warp execution.
const MaxWarpSteps = int64(1) << 34

// Run executes the program over the launch grid against mem (shared by all
// threads, as global device memory is) and returns the aggregated metrics.
// Warps execute sequentially, which is deterministic and race-free for the
// data-parallel kernels in this repository; __syncthreads is a no-op under
// this schedule (kernels relying on cross-warp shared-memory communication
// are out of scope).
func Run(p *codegen.Program, args []interp.Value, mem *interp.Memory, launch Launch, cfg DeviceConfig) (*Metrics, error) {
	return RunWorkers(p, args, mem, launch, cfg, 1)
}

// RunWorkers is Run with an explicit warp-scheduling worker count. Metrics
// are identical for every worker count (workers only changes wall clock).
func RunWorkers(p *codegen.Program, args []interp.Value, mem *interp.Memory, launch Launch, cfg DeviceConfig, workers int) (*Metrics, error) {
	if len(args) != len(p.ParamRegs) {
		return nil, fmt.Errorf("gpusim: kernel %s expects %d args, got %d", p.Name, len(p.ParamRegs), len(args))
	}
	total := launch.Threads()
	warpSize := cfg.WarpSize
	totalWarps := (total + warpSize - 1) / warpSize
	simWarps := totalWarps
	if launch.SampleWarps > 0 && launch.SampleWarps < totalWarps {
		simWarps = launch.SampleWarps
	}
	m := &Metrics{}
	w := newWarpSim(p, cfg, mem)
	for wi := 0; wi < simWarps; wi++ {
		firstThread := wi * warpSize
		count := warpSize
		if firstThread+count > total {
			count = total - firstThread
		}
		if err := w.run(args, launch, firstThread, count, m); err != nil {
			return nil, err
		}
		m.Warps++
	}
	if simWarps < totalWarps {
		m.Scale(float64(totalWarps) / float64(simWarps))
	}
	return m, nil
}

type stackEntry struct {
	pc   int // block index to execute next
	rpc  int // reconvergence block index (-1 = function exit)
	mask uint32
}

type warpSim struct {
	p     *codegen.Program
	cfg   DeviceConfig
	mem   *interp.Memory
	regs  [][]interp.Value // [lane][reg]
	ready []float64        // scoreboard: cycle at which each register's value is available

	// instruction cache: line -> LRU tick
	icache map[int]int64
	tick   int64

	// global instruction index of the first instruction of each block
	blockBase []int
}

func newWarpSim(p *codegen.Program, cfg DeviceConfig, mem *interp.Memory) *warpSim {
	w := &warpSim{p: p, cfg: cfg, mem: mem}
	w.regs = make([][]interp.Value, cfg.WarpSize)
	for i := range w.regs {
		w.regs[i] = make([]interp.Value, p.NumRegs)
	}
	w.ready = make([]float64, p.NumRegs)
	w.icache = make(map[int]int64, cfg.ICacheLines+1)
	w.blockBase = make([]int, len(p.Blocks))
	base := 0
	for i, b := range p.Blocks {
		w.blockBase[i] = base
		base += len(b.Instrs)
	}
	return w
}

func (w *warpSim) run(args []interp.Value, launch Launch, firstThread, count int, m *Metrics) error {
	cfg := w.cfg
	// Reset per-warp state.
	for lane := 0; lane < count; lane++ {
		regs := w.regs[lane]
		for i := range regs {
			regs[i] = interp.Value{}
		}
		for pi, r := range w.p.ParamRegs {
			regs[r] = args[pi]
		}
	}
	for i := range w.ready {
		w.ready[i] = 0
	}
	// The icache stays warm across warps: resident warps share the SM's
	// instruction cache, so only capacity misses (large unmerged bodies)
	// keep stalling after warm-up.

	fullMask := uint32(0)
	for lane := 0; lane < count; lane++ {
		fullMask |= 1 << uint(lane)
	}
	lanesTID := make([]int32, count)
	lanesCTA := make([]int32, count)
	for lane := 0; lane < count; lane++ {
		gid := firstThread + lane
		lanesTID[lane] = int32(gid % launch.BlockDim)
		lanesCTA[lane] = int32(gid / launch.BlockDim)
	}

	stack := []stackEntry{{pc: 0, rpc: -1, mask: fullMask}}
	var steps int64
	var cycles float64   // warp issue clock
	var stallAcc float64 // exposed dependency stalls (metrics only)
	issueScale := func(nActive int) float64 {
		frac := float64(nActive) / float64(cfg.WarpSize)
		return 1 - cfg.ITSOverlap*(1-frac)
	}
	// srcReady returns the scoreboard ready time of an operand.
	srcReady := func(o codegen.Operand) float64 {
		if o.IsImm() {
			return 0
		}
		return w.ready[o.Reg]
	}
	// account charges issue plus the exposed fraction of dependency stalls,
	// and returns the completion time for the destination's scoreboard entry.
	account := func(in *codegen.Instr, nActive int) {
		dep := 0.0
		for _, s := range in.Srcs {
			if r := srcReady(s); r > dep {
				dep = r
			}
		}
		if stall := dep - cycles; stall > 0 {
			// Sub-warp stalls overlap with sibling paths and other warps
			// (independent thread scheduling), so they scale like issue.
			exposed := stall * cfg.StallExposure * issueScale(nActive)
			cycles += exposed
			stallAcc += exposed
		}
		cycles += float64(in.IssueCycles()) * issueScale(nActive)
		if in.Dst != codegen.NoReg {
			w.ready[in.Dst] = cycles + instrLatency(in, cfg)
		}
	}
	for len(stack) > 0 {
		e := &stack[len(stack)-1]
		if e.mask == 0 {
			stack = stack[:len(stack)-1]
			continue
		}
		if e.pc == e.rpc {
			// Reached the reconvergence point: merge into the continuation
			// entry waiting at this block (any entry with the same pc — the
			// mask invariant is that an entry's threads are exactly those
			// whose next block is pc, so same-pc merging is always sound).
			mask := e.mask
			pc := e.pc
			rpc := e.rpc
			stack = stack[:len(stack)-1]
			merged := false
			for i := len(stack) - 1; i >= 0; i-- {
				if stack[i].pc == pc {
					stack[i].mask |= mask
					merged = true
					break
				}
			}
			if !merged {
				// The continuation was already scheduled away (possible after
				// opportunistic back-edge merges); keep executing from here
				// with the reconvergence point cleared.
				outer := -1
				if len(stack) > 0 {
					outer = stack[len(stack)-1].rpc
				}
				if outer == rpc {
					outer = -1
				}
				stack = append(stack, stackEntry{pc: pc, rpc: outer, mask: mask})
			}
			continue
		}
		blk := w.p.Blocks[e.pc]
		active := e.mask
		nActive := popcount(active)
		var brTaken, brNot uint32
		branched := false
		exited := uint32(0)
		var nextPC = -2
		for ii := range blk.Instrs {
			in := &blk.Instrs[ii]
			steps++
			if steps > MaxWarpSteps {
				return fmt.Errorf("gpusim: step budget exhausted in %s", w.p.Name)
			}
			// Fetch: icache model on the global instruction index.
			if w.fetch(w.blockBase[e.pc]+ii, m) {
				cycles += float64(cfg.ICacheMissCycles)
			}

			m.WarpInstrs++
			m.ActiveSum += int64(nActive)
			m.ThreadInstrs += int64(nActive)
			m.ClassThread[in.Class()] += int64(nActive)
			account(in, nActive)

			switch in.Kind {
			case codegen.KBra:
				nextPC = in.Targets[0]
			case codegen.KRet:
				exited = active
				nextPC = -1
			case codegen.KCondBra:
				for lane := 0; lane < count; lane++ {
					if active&(1<<uint(lane)) == 0 {
						continue
					}
					if w.evalOperand(lane, in.Srcs[0]).I != 0 {
						brTaken |= 1 << uint(lane)
					} else {
						brNot |= 1 << uint(lane)
					}
				}
				branched = true
			case codegen.KLd:
				cycles += w.access(lane2addr(w, active, count, in.Srcs[0]), in.Type.Size(), true, m)
				for lane := 0; lane < count; lane++ {
					if active&(1<<uint(lane)) == 0 {
						continue
					}
					addr := w.evalOperand(lane, in.Srcs[0]).I
					v, err := w.mem.Load(in.Type, addr)
					if err != nil {
						return fmt.Errorf("gpusim: %s: %w", w.p.Name, err)
					}
					w.regs[lane][in.Dst] = v
				}
			case codegen.KSt:
				cycles += w.access(lane2addr(w, active, count, in.Srcs[1]), in.Type.Size(), false, m)
				for lane := 0; lane < count; lane++ {
					if active&(1<<uint(lane)) == 0 {
						continue
					}
					addr := w.evalOperand(lane, in.Srcs[1]).I
					if err := w.mem.Store(in.Type, addr, w.evalOperand(lane, in.Srcs[0])); err != nil {
						return fmt.Errorf("gpusim: %s: %w", w.p.Name, err)
					}
				}
			case codegen.KBar:
				// No-op under sequential warp scheduling.
			case codegen.KSpecial:
				for lane := 0; lane < count; lane++ {
					if active&(1<<uint(lane)) == 0 {
						continue
					}
					var v int64
					switch in.IROp {
					case ir.OpTID:
						v = int64(lanesTID[lane])
					case ir.OpNTID:
						v = int64(launch.BlockDim)
					case ir.OpCTAID:
						v = int64(lanesCTA[lane])
					case ir.OpNCTAID:
						v = int64(launch.GridDim)
					}
					w.regs[lane][in.Dst] = interp.IntVal(v)
				}
			default:
				for lane := 0; lane < count; lane++ {
					if active&(1<<uint(lane)) == 0 {
						continue
					}
					w.regs[lane][in.Dst] = w.evalInstr(lane, in)
				}
			}
		}

		// moveTo retargets the current (top) entry to pc. Back edges (to an
		// earlier block in the layout) are where Volta's scheduler
		// opportunistically re-merges divergent threads whose PCs coincide:
		// the entry merges with a sibling already waiting at that pc, or is
		// parked below its siblings (but above its continuation) so they can
		// catch up before the next trip runs.
		moveTo := func(pc int) {
			cur := len(stack) - 1
			if pc >= stack[cur].pc { // forward edge: keep running
				stack[cur].pc = pc
				return
			}
			ent := stack[cur]
			ent.pc = pc
			stack = stack[:cur]
			// Merge with any entry already waiting at the same block —
			// regardless of its rpc: an entry's threads are exactly those
			// whose next block is its pc, so same-pc merging is sound, and
			// the merged threads simply pop wherever the entry later
			// reconverges.
			for i := len(stack) - 1; i >= 0; i-- {
				if stack[i].pc == pc {
					stack[i].mask |= ent.mask
					if ent.rpc != stack[i].rpc {
						// Conservative: clear an ambiguous reconvergence
						// point; the entry then runs to another merge or ret.
						stack[i].rpc = -1
					}
					return
				}
			}
			// Park below the still-running siblings of this divergence (the
			// continuation entries waiting at their rpc stay put).
			ins := len(stack)
			for ins > 0 && stack[ins-1].pc != stack[ins-1].rpc && stack[ins-1].rpc == ent.rpc {
				ins--
			}
			stack = append(stack, stackEntry{})
			copy(stack[ins+1:], stack[ins:])
			stack[ins] = ent
		}
		switch {
		case nextPC == -1: // ret
			// Retire the exited threads from the whole stack.
			for i := range stack {
				stack[i].mask &^= exited
			}
		case branched:
			rpc := w.p.IPDom[e.pc]
			switch {
			case brNot == 0:
				moveTo(in0Target(blk))
			case brTaken == 0:
				moveTo(in1Target(blk))
			default:
				// Divergence: current entry becomes the continuation at the
				// reconvergence point; push both sides.
				taken, not := in0Target(blk), in1Target(blk)
				cont := *e
				cont.pc = rpc
				stack[len(stack)-1] = cont
				if rpc == -1 {
					// No reconvergence before exit: both paths run to ret.
					stack[len(stack)-1].mask = 0
				} else {
					stack[len(stack)-1].mask = 0 // refilled as paths reconverge
				}
				stack = append(stack, stackEntry{pc: not, rpc: rpc, mask: brNot})
				stack = append(stack, stackEntry{pc: taken, rpc: rpc, mask: brTaken})
			}
		default:
			moveTo(nextPC)
		}
	}
	m.Cycles += int64(cycles + 0.5)
	m.DepStallCycles += int64(stallAcc + 0.5)
	return nil
}

func in0Target(b *codegen.Block) int { return b.Instrs[len(b.Instrs)-1].Targets[0] }
func in1Target(b *codegen.Block) int { return b.Instrs[len(b.Instrs)-1].Targets[1] }

func popcount(m uint32) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// lane2addr evaluates the address operand for every active lane.
func lane2addr(w *warpSim, mask uint32, count int, op codegen.Operand) []int64 {
	addrs := make([]int64, 0, count)
	for lane := 0; lane < count; lane++ {
		if mask&(1<<uint(lane)) == 0 {
			continue
		}
		addrs = append(addrs, w.evalOperand(lane, op).I)
	}
	return addrs
}

// access applies the coalescing model: the warp's addresses split into
// 32-byte segments; each segment is one transaction paying a bandwidth cost
// (latency is modelled by the scoreboard, not here). It returns the
// bandwidth cycles for the caller's clock.
func (w *warpSim) access(addrs []int64, size int64, isLoad bool, m *Metrics) float64 {
	segs := map[int64]bool{}
	for _, a := range addrs {
		first := a / w.cfg.SegmentBytes
		last := (a + size - 1) / w.cfg.SegmentBytes
		for s := first; s <= last; s++ {
			segs[s] = true
		}
	}
	n := int64(len(segs))
	bytes := int64(len(addrs)) * size
	if isLoad {
		m.GldTransactions += n
		m.GldBytes += bytes
	} else {
		m.GstTransactions += n
		m.GstBytes += bytes
	}
	return float64(n * w.cfg.MemPerTransaction)
}

// instrLatency is the result latency of an instruction for the scoreboard.
func instrLatency(in *codegen.Instr, cfg DeviceConfig) float64 {
	switch in.Kind {
	case codegen.KLd:
		return cfg.MemLoadLatency
	case codegen.KCompute:
		switch in.IROp {
		case ir.OpSDiv, ir.OpUDiv, ir.OpSRem, ir.OpURem, ir.OpFDiv:
			return 24
		case ir.OpSqrt, ir.OpExp, ir.OpLog, ir.OpSin, ir.OpCos, ir.OpPow:
			return 20
		}
		return 5
	default:
		return 5
	}
}

// fetch records an instruction-cache access; it reports whether it missed.
func (w *warpSim) fetch(globalIdx int, m *Metrics) bool {
	line := globalIdx / w.cfg.ICacheLineInstrs
	w.tick++
	if _, ok := w.icache[line]; ok {
		w.icache[line] = w.tick
		return false
	}
	m.StallInstFetch += w.cfg.ICacheMissCycles
	if len(w.icache) >= w.cfg.ICacheLines {
		// Evict LRU.
		var lruLine int
		lru := int64(math.MaxInt64)
		for l, t := range w.icache {
			if t < lru {
				lru = t
				lruLine = l
			}
		}
		delete(w.icache, lruLine)
	}
	w.icache[line] = w.tick
	return true
}

func (w *warpSim) evalOperand(lane int, op codegen.Operand) interp.Value {
	if op.IsImm() {
		c := op.Imm.(*ir.Const)
		if c.Typ.IsFloat() {
			return interp.FloatVal(c.Float)
		}
		return interp.IntVal(c.Int)
	}
	return w.regs[lane][op.Reg]
}

// evalInstr executes a compute/setp/selp/mov/cvt instruction for one lane.
func (w *warpSim) evalInstr(lane int, in *codegen.Instr) interp.Value {
	get := func(i int) interp.Value { return w.evalOperand(lane, in.Srcs[i]) }
	switch in.Kind {
	case codegen.KMov:
		return get(0)
	case codegen.KSelp:
		if get(0).I != 0 {
			return get(1)
		}
		return get(2)
	case codegen.KSetp:
		return evalSetp(in, get(0), get(1))
	case codegen.KCvt:
		return evalCvt(in, get(0))
	case codegen.KCompute:
		return evalCompute(in, get)
	}
	panic("gpusim: unhandled instruction kind")
}

func truncI(t *ir.Type, v int64) int64 {
	switch t.Kind {
	case ir.KindI1:
		return v & 1
	case ir.KindI8:
		return int64(int8(v))
	case ir.KindI32:
		return int64(int32(v))
	default:
		return v
	}
}

func roundF(t *ir.Type, v float64) float64 {
	if t == ir.F32 {
		return float64(float32(v))
	}
	return v
}

func evalSetp(in *codegen.Instr, a, b interp.Value) interp.Value {
	var r bool
	if in.IROp == ir.OpICmp {
		t := in.Type
		ua := uint64(truncI(t, a.I))
		ub := uint64(truncI(t, b.I))
		if t == ir.I32 {
			ua, ub = uint64(uint32(a.I)), uint64(uint32(b.I))
		}
		switch in.Pred {
		case ir.EQ:
			r = a.I == b.I
		case ir.NE:
			r = a.I != b.I
		case ir.SLT:
			r = a.I < b.I
		case ir.SLE:
			r = a.I <= b.I
		case ir.SGT:
			r = a.I > b.I
		case ir.SGE:
			r = a.I >= b.I
		case ir.ULT:
			r = ua < ub
		case ir.ULE:
			r = ua <= ub
		case ir.UGT:
			r = ua > ub
		case ir.UGE:
			r = ua >= ub
		}
	} else {
		switch in.Pred {
		case ir.OEQ:
			r = a.F == b.F
		case ir.ONE:
			r = a.F != b.F
		case ir.OLT:
			r = a.F < b.F
		case ir.OLE:
			r = a.F <= b.F
		case ir.OGT:
			r = a.F > b.F
		case ir.OGE:
			r = a.F >= b.F
		}
	}
	if r {
		return interp.IntVal(1)
	}
	return interp.IntVal(0)
}

func evalCvt(in *codegen.Instr, a interp.Value) interp.Value {
	switch in.IROp {
	case ir.OpTrunc:
		return interp.IntVal(truncI(in.Type, a.I))
	case ir.OpZExt:
		// The source width is unknown here; zext from i1/i32 covers the
		// frontend's uses (bool->int and i32 indexes are sign-extended via
		// SExt instead).
		if a.I == 0 || a.I == 1 {
			return interp.IntVal(a.I)
		}
		return interp.IntVal(int64(uint32(a.I)))
	case ir.OpSExt:
		return interp.IntVal(a.I)
	case ir.OpSIToFP:
		return interp.FloatVal(roundF(in.Type, float64(a.I)))
	case ir.OpFPToSI:
		if math.IsNaN(a.F) || math.IsInf(a.F, 0) {
			return interp.IntVal(0)
		}
		return interp.IntVal(truncI(in.Type, int64(a.F)))
	case ir.OpFPExt:
		return interp.FloatVal(a.F)
	case ir.OpFPTrunc:
		return interp.FloatVal(roundF(in.Type, a.F))
	}
	panic("gpusim: bad conversion " + in.IROp.String())
}

func evalCompute(in *codegen.Instr, get func(int) interp.Value) interp.Value {
	t := in.Type
	if t.IsFloat() {
		a := get(0).F
		var b float64
		if len(in.Srcs) > 1 {
			b = get(1).F
		}
		var r float64
		switch in.IROp {
		case ir.OpFAdd:
			r = a + b
		case ir.OpFSub:
			r = a - b
		case ir.OpFMul:
			r = a * b
		case ir.OpFDiv:
			r = a / b
		case ir.OpPow:
			r = math.Pow(a, b)
		case ir.OpFMin:
			r = math.Min(a, b)
		case ir.OpFMax:
			r = math.Max(a, b)
		case ir.OpSqrt:
			r = math.Sqrt(a)
		case ir.OpFAbs:
			r = math.Abs(a)
		case ir.OpExp:
			r = math.Exp(a)
		case ir.OpLog:
			r = math.Log(a)
		case ir.OpSin:
			r = math.Sin(a)
		case ir.OpCos:
			r = math.Cos(a)
		case ir.OpFloor:
			r = math.Floor(a)
		default:
			panic("gpusim: bad float op " + in.IROp.String())
		}
		return interp.FloatVal(roundF(t, r))
	}
	a := get(0).I
	var b int64
	if len(in.Srcs) > 1 {
		b = get(1).I
	}
	var r int64
	switch in.IROp {
	case ir.OpAdd:
		r = a + b
	case ir.OpSub:
		r = a - b
	case ir.OpMul:
		r = a * b
	case ir.OpSDiv:
		if b == 0 {
			r = 0
		} else {
			r = a / b
		}
	case ir.OpUDiv:
		if b == 0 {
			r = 0
		} else {
			r = int64(toU(t, a) / toU(t, b))
		}
	case ir.OpSRem:
		if b == 0 {
			r = 0
		} else {
			r = a % b
		}
	case ir.OpURem:
		if b == 0 {
			r = 0
		} else {
			r = int64(toU(t, a) % toU(t, b))
		}
	case ir.OpShl:
		r = a << (uint64(b) & uint64(t.Bits()-1))
	case ir.OpLShr:
		r = int64(toU(t, a) >> (uint64(b) & uint64(t.Bits()-1)))
	case ir.OpAShr:
		r = a >> (uint64(b) & uint64(t.Bits()-1))
	case ir.OpAnd:
		r = a & b
	case ir.OpOr:
		r = a | b
	case ir.OpXor:
		r = a ^ b
	case ir.OpSMin:
		r = min(a, b)
	case ir.OpSMax:
		r = max(a, b)
	default:
		panic("gpusim: bad int op " + in.IROp.String())
	}
	return interp.IntVal(truncI(t, r))
}

func toU(t *ir.Type, v int64) uint64 {
	switch t.Kind {
	case ir.KindI1:
		return uint64(v) & 1
	case ir.KindI8:
		return uint64(uint8(v))
	case ir.KindI32:
		return uint64(uint32(v))
	default:
		return uint64(v)
	}
}
