package gpusim

// The MinSP-PC-style backend models post-Volta independent thread
// scheduling the way "Control Flow Management in Modern GPUs" describes
// it: a warp is a set of independently schedulable thread groups, the
// scheduler always runs the runnable group with the minimum PC (the
// convergence-friendly order), and reconvergence is not a stack pop but an
// explicit per-warp convergence barrier placed at the diverging branch's
// immediate post-dominator. Groups arriving at their barrier wait; when
// every live participant has arrived the barrier releases one merged
// group. Compared to IPDOM this interleaves divergent paths instead of
// running one side to completion first — same executed work on
// structured control flow, but a different fetch pattern (the icache sees
// alternating paths) and graceful handling of unstructured flow where the
// IPDOM stack falls back to opportunistic merging.

// tsGroup is one independently schedulable thread group.
type tsGroup struct {
	pc   int32  // next block index
	bar  int32  // innermost convergence barrier (index into barriers, -1 none)
	mask uint32 // member lanes
}

// tsBarrier is one per-warp convergence barrier.
type tsBarrier struct {
	block   int32  // reconvergence block the participants arrive at
	outer   int32  // enclosing barrier the released group reports to (-1 none)
	pending uint32 // live lanes that must arrive before release
	arrived uint32 // lanes already waiting
}

type minsppcEngine struct {
	dp       *decodedProgram
	prof     *Profile
	groups   []tsGroup
	barriers []tsBarrier
	cur      int // group returned by the last next()
}

func newMinSPPCEngine(dp *decodedProgram) *minsppcEngine {
	return &minsppcEngine{
		dp:       dp,
		groups:   make([]tsGroup, 0, 8),
		barriers: make([]tsBarrier, 0, 8),
	}
}

func (g *minsppcEngine) reset(prof *Profile, fullMask uint32) {
	g.prof = prof
	g.groups = append(g.groups[:0], tsGroup{pc: 0, bar: -1, mask: fullMask})
	g.barriers = g.barriers[:0]
	g.cur = -1
}

// next settles barrier arrivals and releases to a fixpoint, then schedules
// the runnable group with the minimum PC (ties go to the oldest group).
func (g *minsppcEngine) next() (int, uint32, bool) {
	for {
		changed := false
		// Drop emptied groups, deliver barrier arrivals, and merge groups
		// that share both PC and barrier scope (the hardware would have
		// coalesced them into one group already).
		out := 0
		for i := 0; i < len(g.groups); i++ {
			gr := g.groups[i]
			if gr.mask == 0 {
				changed = true
				continue
			}
			if gr.bar >= 0 && gr.pc == g.barriers[gr.bar].block {
				b := &g.barriers[gr.bar]
				b.arrived |= gr.mask
				if g.prof != nil && b.arrived != b.pending {
					g.prof.Counters[ProfBarrierWaits][g.dp.blockStart[gr.pc]]++
				}
				changed = true
				continue
			}
			merged := false
			for j := 0; j < out; j++ {
				if g.groups[j].pc == gr.pc && g.groups[j].bar == gr.bar {
					g.groups[j].mask |= gr.mask
					merged = true
					changed = true
					break
				}
			}
			if merged {
				continue
			}
			g.groups[out] = gr
			out++
		}
		g.groups = g.groups[:out]
		// Release complete barriers: one merged group continues past the
		// reconvergence block under the enclosing barrier. Scanning from
		// the innermost (highest index) keeps cascaded releases — an inner
		// release arriving straight at its outer barrier — deterministic.
		for bi := len(g.barriers) - 1; bi >= 0; bi-- {
			b := &g.barriers[bi]
			if b.pending != 0 && b.arrived == b.pending {
				if g.prof != nil {
					g.prof.Counters[ProfReconvEvents][g.dp.blockStart[b.block]]++
				}
				g.groups = append(g.groups, tsGroup{pc: b.block, bar: b.outer, mask: b.pending})
				b.pending, b.arrived = 0, 0
				changed = true
			}
		}
		if changed {
			continue
		}
		if len(g.groups) == 0 {
			// Defensive: lane conservation guarantees no barrier can still
			// hold waiters here; if one somehow does, releasing its arrived
			// lanes keeps the warp finishing instead of wedging.
			forced := false
			for bi := len(g.barriers) - 1; bi >= 0; bi-- {
				b := &g.barriers[bi]
				if b.arrived != 0 {
					g.groups = append(g.groups, tsGroup{pc: b.block, bar: b.outer, mask: b.arrived})
					b.pending, b.arrived = 0, 0
					forced = true
					break
				}
			}
			if forced {
				continue
			}
			return 0, 0, false
		}
		best := 0
		for i := 1; i < len(g.groups); i++ {
			if g.groups[i].pc < g.groups[best].pc {
				best = i
			}
		}
		g.cur = best
		return int(g.groups[best].pc), g.groups[best].mask, true
	}
}

func (g *minsppcEngine) branch(blk int, brTaken, brNot uint32) {
	dp := g.dp
	end := dp.blockEnd[blk]
	term := &dp.instrs[end-1]
	gr := &g.groups[g.cur]
	switch {
	case brNot == 0:
		gr.pc = term.t0
	case brTaken == 0:
		gr.pc = term.t1
	default:
		// Divergence: the group splits in two. With a known reconvergence
		// point a convergence barrier is armed there and both halves run
		// under it; without one (rpc == -1) both halves stay under the
		// enclosing barrier and run to ret.
		if g.prof != nil {
			g.prof.Counters[ProfDivergeEvents][end-1]++
		}
		bar := gr.bar
		if rpc := dp.ipdom[blk]; rpc >= 0 {
			g.barriers = append(g.barriers, tsBarrier{
				block:   int32(rpc),
				outer:   bar,
				pending: brTaken | brNot,
			})
			bar = int32(len(g.barriers) - 1)
		}
		*gr = tsGroup{pc: term.t0, bar: bar, mask: brTaken}
		g.groups = append(g.groups, tsGroup{pc: term.t1, bar: bar, mask: brNot})
	}
}

func (g *minsppcEngine) jump(pc int) {
	g.groups[g.cur].pc = int32(pc)
}

func (g *minsppcEngine) retire(mask uint32) {
	for i := range g.groups {
		g.groups[i].mask &^= mask
	}
	// Retired lanes stop participating in every barrier they were counted
	// in; a barrier whose remaining participants have all arrived releases
	// on the next scheduling pass.
	for i := range g.barriers {
		g.barriers[i].pending &^= mask
	}
}
