package gpusim

import (
	"bytes"
	"testing"

	"uu/internal/interp"
	"uu/internal/pipeline"
)

func TestPolicyNamesRoundTrip(t *testing.T) {
	if len(Policies()) != int(numPolicies) {
		t.Fatalf("Policies() returned %d entries, want %d", len(Policies()), numPolicies)
	}
	for _, k := range Policies() {
		got, err := ParsePolicy(k.String())
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("ParsePolicy(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParsePolicy("stackless"); err == nil {
		t.Errorf("ParsePolicy accepted an unknown policy name")
	}
}

func TestDeviceRegistry(t *testing.T) {
	want := []string{"V100", "MinSPPC", "Vortex"}
	if got := DeviceNames(); len(got) != len(want) {
		t.Fatalf("DeviceNames() = %v, want %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("DeviceNames() = %v, want %v", got, want)
			}
		}
	}
	// The lookup is case-insensitive; each registry entry carries the
	// policy its name promises.
	for name, pol := range map[string]PolicyKind{
		"v100":    PolicyIPDOM,
		"minsppc": PolicyMinSPPC,
		"VORTEX":  PolicyVortex,
	} {
		d, ok := DeviceByName(name)
		if !ok {
			t.Fatalf("DeviceByName(%q) not found", name)
		}
		if d.Config.Policy != pol {
			t.Errorf("device %s: policy %v, want %v", name, d.Config.Policy, pol)
		}
	}
	// MinSPPC shares every hardware constant with V100 so that comparing
	// the two isolates the divergence-management axis.
	mc, v := MinSPPC(), V100()
	mc.Policy = v.Policy
	if mc != v {
		t.Errorf("MinSPPC differs from V100 beyond the policy: %+v vs %+v", MinSPPC(), v)
	}
	if Vortex().WarpSize != 16 {
		t.Errorf("Vortex warp size = %d, want 16", Vortex().WarpSize)
	}
}

func TestParseDevice(t *testing.T) {
	cfg, name, err := ParseDevice("V100")
	if err != nil || name != "V100" || cfg != V100() {
		t.Fatalf("ParseDevice(V100) = %+v, %q, %v", cfg, name, err)
	}
	cfg, name, err = ParseDevice("Vortex:warpsize=8,icachelines=32,policy=ipdom")
	if err != nil {
		t.Fatalf("ParseDevice with overrides: %v", err)
	}
	if cfg.WarpSize != 8 || cfg.ICacheLines != 32 || cfg.Policy != PolicyIPDOM {
		t.Errorf("overrides not applied: %+v", cfg)
	}
	if name != "Vortex:warpsize=8,icachelines=32,policy=ipdom" {
		t.Errorf("display name %q should carry the overrides", name)
	}

	for _, bad := range []string{
		"TPUv4",                  // unknown device
		"V100:warpsize=64",       // out of mask range
		"V100:warpsize=0",        // degenerate
		"V100:policy=stackless",  // unknown policy
		"V100:clockghz",          // missing value
		"V100:memloadlat=1",      // unknown key
		"V100:numsms=eighty",     // bad int
		"V100:stallexposure=x.y", // bad float
	} {
		if _, _, err := ParseDevice(bad); err == nil {
			t.Errorf("ParseDevice(%q) succeeded, want error", bad)
		}
	}
}

// TestParseDeviceNarrowWarpRuns checks that an override-narrowed warp
// actually executes divergent code correctly: the mask paths must hold for
// any width in [1, 32], not just the registry's 32 and 16.
func TestParseDeviceNarrowWarpRuns(t *testing.T) {
	p := build(t, policyDivSrc, pipeline.Options{Config: pipeline.Baseline})
	launch := Launch{GridDim: 2, BlockDim: 64}
	n := int64(launch.Threads())
	args := []interp.Value{interp.IntVal(0), interp.IntVal(n)}

	var refMem []byte
	for _, spec := range []string{"V100", "V100:warpsize=1", "V100:warpsize=7", "MinSPPC:warpsize=3", "Vortex:warpsize=5"} {
		cfg, _, err := ParseDevice(spec)
		if err != nil {
			t.Fatalf("ParseDevice(%q): %v", spec, err)
		}
		mem := interp.NewMemory(1 << 14)
		for i := int64(0); i < n; i++ {
			mem.SetF64(0, i, float64(i)*0.25)
		}
		m, err := RunWorkers(p, args, mem, launch, cfg, 1)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if m.Warps == 0 || m.ThreadInstrs == 0 {
			t.Errorf("%s: empty metrics %+v", spec, m)
		}
		if refMem == nil {
			refMem = mem.Data
			continue
		}
		if !bytes.Equal(mem.Data, refMem) {
			t.Errorf("%s: final memory differs from the 32-wide reference", spec)
		}
	}
}
