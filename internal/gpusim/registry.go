package gpusim

import (
	"fmt"
	"strconv"
	"strings"
)

// Device is one named entry of the device registry: a DeviceConfig plus
// the name reports and CLIs refer to it by.
type Device struct {
	Name        string
	Description string
	Config      DeviceConfig
}

// MinSPPC returns the V100 hardware configuration with the MinSP-PC
// independent-thread-scheduling policy in place of the IPDOM stack. It
// deliberately shares every other constant with V100 so that comparing the
// two isolates the divergence-management axis.
func MinSPPC() DeviceConfig {
	cfg := V100()
	cfg.Policy = PolicyMinSPPC
	return cfg
}

// Vortex returns a configuration loosely modelled after a Vortex-class
// RISC-V GPGPU: 16-wide warps, a handful of small cores at FPGA-like
// clocks, a 4 KiB instruction cache, in-order lockstep issue (no ITS
// overlap), and the decoupled split/join divergence policy.
func Vortex() DeviceConfig {
	return DeviceConfig{
		WarpSize:          16,
		NumSMs:            16,
		ClockGHz:          0.25,
		MemLoadLatency:    100,
		StallExposure:     0.5,
		MemPerTransaction: 4,
		SegmentBytes:      32,
		ICacheLineInstrs:  8,
		ICacheLines:       64, // 64 lines * 8 instrs * 8 B = 4 KiB
		ICacheMissCycles:  10,
		ITSOverlap:        0,
		Policy:            PolicyVortex,
		Exec:              ExecThreaded,
	}
}

// Devices returns the registry in canonical (report) order.
func Devices() []Device {
	return []Device{
		{
			Name:        "V100",
			Description: "NVIDIA V100-like: 32-wide warps, IPDOM reconvergence stack, 12 KiB icache",
			Config:      V100(),
		},
		{
			Name:        "MinSPPC",
			Description: "V100 hardware with MinSP-PC independent thread scheduling and convergence barriers",
			Config:      MinSPPC(),
		},
		{
			Name:        "Vortex",
			Description: "Vortex-like RISC-V GPGPU: 16-wide warps, decoupled split/join, 4 KiB icache",
			Config:      Vortex(),
		},
	}
}

// DeviceNames returns the registry names in canonical order.
func DeviceNames() []string {
	devs := Devices()
	names := make([]string, len(devs))
	for i, d := range devs {
		names[i] = d.Name
	}
	return names
}

// DeviceByName looks a device up by its registry name (case-insensitive).
func DeviceByName(name string) (Device, bool) {
	for _, d := range Devices() {
		if strings.EqualFold(d.Name, name) {
			return d, true
		}
	}
	return Device{}, false
}

// ParseDevice resolves a CLI device spec: a registry name, optionally
// followed by ":" and comma-separated field overrides —
//
//	V100
//	MinSPPC:itsoverlap=0.5
//	Vortex:warpsize=8,icachelines=32,policy=ipdom
//
// Override keys are the lower-cased DeviceConfig field names. The returned
// display name is the registry name for a plain spec and the full spec
// when overrides are present, so reports always say what actually ran.
func ParseDevice(spec string) (DeviceConfig, string, error) {
	name, overrides, hasOv := strings.Cut(spec, ":")
	name = strings.TrimSpace(name)
	dev, ok := DeviceByName(name)
	if !ok {
		return DeviceConfig{}, "", fmt.Errorf("gpusim: unknown device %q (want one of %s)",
			name, strings.Join(DeviceNames(), ", "))
	}
	cfg := dev.Config
	if !hasOv || strings.TrimSpace(overrides) == "" {
		return cfg, dev.Name, nil
	}
	for _, kv := range strings.Split(overrides, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return DeviceConfig{}, "", fmt.Errorf("gpusim: device override %q: want key=value", kv)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		if err := setOverride(&cfg, key, val); err != nil {
			return DeviceConfig{}, "", err
		}
	}
	if cfg.WarpSize < 1 || cfg.WarpSize > 32 {
		return DeviceConfig{}, "", fmt.Errorf("gpusim: warpsize %d out of range [1, 32]", cfg.WarpSize)
	}
	return cfg, dev.Name + ":" + overrides, nil
}

func setOverride(cfg *DeviceConfig, key, val string) error {
	asInt := func(dst *int) error {
		v, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("gpusim: device override %s=%q: %v", key, val, err)
		}
		*dst = v
		return nil
	}
	asInt64 := func(dst *int64) error {
		v, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("gpusim: device override %s=%q: %v", key, val, err)
		}
		*dst = v
		return nil
	}
	asFloat := func(dst *float64) error {
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("gpusim: device override %s=%q: %v", key, val, err)
		}
		*dst = v
		return nil
	}
	switch key {
	case "warpsize":
		return asInt(&cfg.WarpSize)
	case "numsms":
		return asInt(&cfg.NumSMs)
	case "clockghz":
		return asFloat(&cfg.ClockGHz)
	case "memloadlatency":
		return asFloat(&cfg.MemLoadLatency)
	case "stallexposure":
		return asFloat(&cfg.StallExposure)
	case "mempertransaction":
		return asInt64(&cfg.MemPerTransaction)
	case "segmentbytes":
		return asInt64(&cfg.SegmentBytes)
	case "icachelineinstrs":
		return asInt(&cfg.ICacheLineInstrs)
	case "icachelines":
		return asInt(&cfg.ICacheLines)
	case "icachemisscycles":
		return asInt64(&cfg.ICacheMissCycles)
	case "itsoverlap":
		return asFloat(&cfg.ITSOverlap)
	case "maxwarpsteps":
		return asInt64(&cfg.MaxWarpSteps)
	case "policy":
		p, err := ParsePolicy(val)
		if err != nil {
			return err
		}
		cfg.Policy = p
		return nil
	case "exec":
		e, err := ParseExec(val)
		if err != nil {
			return err
		}
		cfg.Exec = e
		return nil
	}
	return fmt.Errorf("gpusim: unknown device override key %q", key)
}
