package gpusim

import (
	"flag"
	"testing"

	"uu/internal/interp"
	"uu/internal/pipeline"
)

// benchSimWorkers selects the worker count BenchmarkWarpSim drives RunWorkers
// with; CI smokes the default, perf comparisons sweep it.
var benchSimWorkers = flag.Int("sim-workers", 1, "gpusim worker count exercised by the tests")

// benchExec selects the execution backend BenchmarkWarpSim runs on; the
// regression harness (cmd/benchcmp, results/warpsim-bench.txt) compares
// the two backends' rates against a recorded baseline ratio.
// ("sim-exec" rather than "exec": go test claims -exec for itself.)
var benchExec = flag.String("sim-exec", "threaded", "gpusim execution backend exercised by the benchmarks: switch or threaded")

// warpSimCase is one throughput scenario: the simulator's three steady-state
// regimes (ALU-bound, memory/coalescing-bound, divergence-bound).
type warpSimCase struct {
	name string
	src  string
	opts pipeline.Options
	args []interp.Value
	mem  int64
}

func warpSimCases() []warpSimCase {
	const compute = `
kernel wc(double* restrict out, long n) {
  long i = (long)global_id();
  double a = (double)i * 0.5;
  for (long k = 0; k < n; k++) {
    a = a * 1.0000001 + 0.5;
    a = a * 0.9999999 - 0.25;
  }
  out[i] = a;
}
`
	const memory = `
kernel wm(double* restrict x, double* restrict y, long n) {
  long i = (long)global_id();
  double acc = 0.0;
  for (long k = 0; k < n; k++) {
    acc = acc + x[(i + k * 33) & 8191];
  }
  y[i] = acc;
}
`
	const divergent = `
kernel wd(long* restrict out, long n) {
  long i = (long)tid();
  long acc = 0;
  for (long k = 0; k < n; k++) {
    if (((i + k) & 3) == 0) {
      acc = acc + k * 3;
    } else {
      acc = acc - k;
    }
  }
  out[i] = acc;
}
`
	return []warpSimCase{
		{
			name: "compute",
			src:  compute,
			opts: pipeline.Options{Config: pipeline.Baseline},
			args: []interp.Value{interp.IntVal(0), interp.IntVal(256)},
			mem:  8 * 1024,
		},
		{
			name: "memory",
			src:  memory,
			opts: pipeline.Options{Config: pipeline.Baseline},
			args: []interp.Value{interp.IntVal(0), interp.IntVal(8 * 8192), interp.IntVal(128)},
			mem:  8 * (8192 + 1024),
		},
		{
			name: "divergent",
			src:  divergent,
			opts: pipeline.Options{Config: pipeline.Baseline, DisableIfConvert: true},
			args: []interp.Value{interp.IntVal(0), interp.IntVal(256)},
			mem:  8 * 1024,
		},
	}
}

// BenchmarkWarpSim measures simulated-instruction throughput — the number
// the decoded, allocation-free execution core is meant to at least double.
// It reports thread-instrs/s (the sweep-relevant rate) alongside ns/op.
func BenchmarkWarpSim(b *testing.B) {
	launch := Launch{GridDim: 8, BlockDim: 128}
	exec, err := ParseExec(*benchExec)
	if err != nil {
		b.Fatal(err)
	}
	cfg := V100()
	cfg.Exec = exec
	for _, c := range warpSimCases() {
		c := c
		b.Run(c.name, func(b *testing.B) {
			p := build(b, c.src, c.opts)
			mem := interp.NewMemory(c.mem)
			// One warm-up run sizes the per-run work for the rate metric.
			m, err := RunWorkers(p, c.args, mem, launch, cfg, *benchSimWorkers)
			if err != nil {
				b.Fatal(err)
			}
			perRun := m.ThreadInstrs
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := RunWorkers(p, c.args, mem, launch, cfg, *benchSimWorkers); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			rate := float64(perRun) * float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(rate, "instrs/s")
		})
	}
}
