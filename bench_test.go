package uu_test

import (
	"fmt"
	"io"
	"os"
	"sync"
	"testing"

	"uu/internal/bench"
	"uu/internal/gpusim"
	"uu/internal/interp"
	"uu/internal/pipeline"
)

// The full experiment sweep (16 applications x 5 configurations x unroll
// factors 2/4/8, one loop at a time) backs every table and figure. It runs
// once and is shared by all benchmarks below.
var (
	sweepOnce sync.Once
	sweepRes  *bench.Results
	sweepErr  error
)

func sweep(b *testing.B) *bench.Results {
	sweepOnce.Do(func() {
		sweepRes, sweepErr = bench.RunExperiments(bench.HarnessOptions{
			Factors:  []int{2, 4, 8},
			Progress: io.Discard,
		})
	})
	if sweepErr != nil {
		b.Fatalf("sweep: %v", sweepErr)
	}
	return sweepRes
}

// BenchmarkTable1 regenerates Table I (benchmark overview with baseline and
// heuristic kernel times).
func BenchmarkTable1(b *testing.B) {
	res := sweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.WriteTable1(io.Discard, res)
	}
	b.StopTimer()
	bench.WriteTable1(os.Stdout, res)
}

// BenchmarkFig6a regenerates Figure 6a (u&u and heuristic speedup over
// baseline per loop and unroll factor).
func BenchmarkFig6a(b *testing.B) {
	res := sweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.WriteFig6a(io.Discard, res)
	}
	b.StopTimer()
	bench.WriteFig6a(os.Stdout, res)
}

// BenchmarkFig6b regenerates Figure 6b (code size increase over baseline).
func BenchmarkFig6b(b *testing.B) {
	res := sweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.WriteFig6b(io.Discard, res)
	}
	b.StopTimer()
	bench.WriteFig6b(os.Stdout, res)
}

// BenchmarkFig6c regenerates Figure 6c (compile time increase over baseline).
func BenchmarkFig6c(b *testing.B) {
	res := sweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.WriteFig6c(io.Discard, res)
	}
	b.StopTimer()
	bench.WriteFig6c(os.Stdout, res)
}

// BenchmarkFig7 regenerates Figure 7 (u&u vs unroll-only vs unmerge-only per
// application).
func BenchmarkFig7(b *testing.B) {
	res := sweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.WriteFig7(io.Discard, res)
	}
	b.StopTimer()
	bench.WriteFig7(os.Stdout, res)
}

// BenchmarkFig8 regenerates Figures 8a/8b (per-loop scatter: u&u vs unroll,
// u&u vs unmerge).
func BenchmarkFig8(b *testing.B) {
	res := sweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.WriteFig8(io.Discard, res)
	}
	b.StopTimer()
	bench.WriteFig8(os.Stdout, res)
}

// BenchmarkCompile measures the compiler pipeline itself (the quantity
// behind Figure 6c) on the paper's motivating kernel.
func BenchmarkCompile(b *testing.B) {
	for _, cfg := range []pipeline.Options{
		{Config: pipeline.Baseline},
		{Config: pipeline.UnrollOnly, LoopID: 0, Factor: 4},
		{Config: pipeline.UnmergeOnly, LoopID: 0},
		{Config: pipeline.UU, LoopID: 0, Factor: 4},
		{Config: pipeline.UUHeuristic},
	} {
		name := string(cfg.Config)
		if cfg.Factor > 0 {
			name = fmt.Sprintf("%s-u%d", cfg.Config, cfg.Factor)
		}
		b.Run(name, func(b *testing.B) {
			xs := bench.ByName("xsbench")
			for i := 0; i < b.N; i++ {
				if _, err := bench.Compile(xs, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulate measures one simulated kernel execution per
// configuration for the in-depth-analysis applications (§V).
func BenchmarkSimulate(b *testing.B) {
	dev := gpusim.V100()
	for _, app := range []string{"xsbench", "rainflow", "complex", "bezier-surface"} {
		for _, cfg := range []pipeline.Options{
			{Config: pipeline.Baseline},
			{Config: pipeline.UU, LoopID: 0, Factor: 2},
		} {
			name := fmt.Sprintf("%s/%s", app, cfg.Config)
			b.Run(name, func(b *testing.B) {
				bm := bench.ByName(app)
				w := bm.NewWorkload()
				cr, err := bench.Compile(bm, cfg)
				if err != nil {
					b.Fatal(err)
				}
				var last *gpusim.Metrics
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m, err := bench.Execute(cr, w, dev, nil)
					if err != nil {
						b.Fatal(err)
					}
					last = m
				}
				b.StopTimer()
				if last != nil {
					b.ReportMetric(last.KernelMillis(dev)*1e3, "sim-us/launch")
					b.ReportMetric(last.IPC(), "sim-IPC")
				}
			})
		}
	}
}

// BenchmarkInterpreter measures the reference interpreter on one xsbench
// lookup; it is the verification oracle's unit of work.
func BenchmarkInterpreter(b *testing.B) {
	xs := bench.ByName("xsbench")
	f := xs.Kernel()
	w := xs.NewWorkload()
	mem := w.NewMemory()
	env := interp.Env{TID: 0, NTID: int32(w.Launch.BlockDim), CTAID: 0, NCTAID: int32(w.Launch.GridDim)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := interp.Run(f, w.Args, mem, env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblations regenerates the design-choice ablation tables of
// DESIGN.md §4 (whole-path vs direct-successor duplication, GVN equality
// propagation, GVN load elimination, backend predication).
func BenchmarkAblations(b *testing.B) {
	dev := gpusim.V100()
	specs := []struct {
		app          string
		loop, factor int
	}{{"bezier-surface", 1, 2}, {"rainflow", 0, 4}, {"xsbench", 0, 2}, {"complex", 0, 4}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range specs {
			rows, err := bench.RunAblations(s.app, s.loop, s.factor, dev)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				bench.WriteAblations(os.Stdout, s.app, s.loop, s.factor, rows)
			}
		}
	}
}
