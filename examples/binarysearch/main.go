// Binary search walk-through: reproduces the paper's XSBench analysis
// (Listings 1, 3, 4, 5 and the Section V counters). It shows how the
// baseline pipeline predicates the loop body into selp instructions, how
// unroll-and-unmerge replaces them with branches while deleting the
// subtraction and data movement, and what that does to the simulator's
// nvprof-style counters.
//
//	go run ./examples/binarysearch
package main

import (
	"fmt"
	"log"

	"uu/internal/bench"
	"uu/internal/codegen"
	"uu/internal/gpusim"
	"uu/internal/pipeline"
)

func main() {
	b := bench.ByName("xsbench")
	w := b.NewWorkload()
	dev := gpusim.V100()

	fmt.Println("=== Listing 1: the binary search loop (MiniCU) ===")
	fmt.Print(b.Source)

	ref, err := bench.Reference(b, w)
	if err != nil {
		log.Fatalf("reference: %v", err)
	}

	compile := func(opts pipeline.Options) *bench.CompileResult {
		cr, err := bench.Compile(b, opts)
		if err != nil {
			log.Fatalf("compile %s: %v", opts.Config, err)
		}
		return cr
	}

	base := compile(pipeline.Options{Config: pipeline.Baseline})
	uu := compile(pipeline.Options{Config: pipeline.UU, LoopID: 0, Factor: 2})

	fmt.Println("=== Listing 4 analogue: baseline VPTX uses selp (predication) ===")
	fmt.Printf("baseline: %d selp, %d conditional branches, %d instructions\n",
		base.Program.CountKind(codegen.KSelp), base.Program.CountKind(codegen.KCondBra),
		base.Program.NumInstrs())
	fmt.Println("=== Listing 5 analogue: u&u replaces selects with branches ===")
	fmt.Printf("u&u (u=2): %d selp, %d conditional branches, %d instructions\n\n",
		uu.Program.CountKind(codegen.KSelp), uu.Program.CountKind(codegen.KCondBra),
		uu.Program.NumInstrs())

	baseM, err := bench.Execute(base, w, dev, ref)
	if err != nil {
		log.Fatalf("baseline run: %v", err)
	}
	uuM, err := bench.Execute(uu, w, dev, ref)
	if err != nil {
		log.Fatalf("u&u run: %v", err)
	}
	fmt.Println("both configurations verified against the reference interpreter")

	fmt.Println("\n=== Section V counters (baseline -> u&u) ===")
	fmt.Printf("inst_misc            %8d -> %8d (%.0f%%)\n",
		baseM.ClassThread[codegen.ClassMisc], uuM.ClassThread[codegen.ClassMisc],
		100*float64(uuM.ClassThread[codegen.ClassMisc]-baseM.ClassThread[codegen.ClassMisc])/float64(baseM.ClassThread[codegen.ClassMisc]))
	fmt.Printf("warp_exec_efficiency %7.2f%% -> %7.2f%%\n",
		baseM.WarpExecutionEfficiency(dev)*100, uuM.WarpExecutionEfficiency(dev)*100)
	fmt.Printf("IPC                  %8.3f -> %8.3f\n", baseM.IPC(), uuM.IPC())
	fmt.Printf("kernel time          %.5f ms -> %.5f ms (speedup %.3fx)\n",
		baseM.KernelMillis(dev), uuM.KernelMillis(dev),
		baseM.KernelMillis(dev)/uuM.KernelMillis(dev))
}
