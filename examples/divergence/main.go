// Divergence walk-through: the paper's `complex` outlier (Listing 7 and
// Section V). The loop's `n & 1` condition depends on the thread id, so the
// baseline's predicated code runs at full warp efficiency while u&u's
// unmerged paths diverge for long stretches — and the slowdown grows with
// the unroll factor as the path tree (and its instruction-cache footprint)
// explodes.
//
//	go run ./examples/divergence
package main

import (
	"fmt"
	"log"

	"uu/internal/analysis"
	"uu/internal/bench"
	"uu/internal/core"
	"uu/internal/gpusim"
	"uu/internal/pipeline"
	"uu/internal/transform"
)

func main() {
	b := bench.ByName("complex")
	w := b.NewWorkload()
	dev := gpusim.V100()

	fmt.Println("=== Listing 7: the complex loop ===")
	fmt.Print(b.Source)

	// The divergence analysis the paper proposes as future work flags this
	// loop: its branch condition is tainted by the thread id. (The analysis
	// needs promoted SSA — taint does not flow through allocas.)
	f := b.Kernel()
	transform.Mem2Reg(f)
	div := analysis.NewDivergence(f)
	dt := analysis.NewDomTree(f)
	li := analysis.NewLoopInfo(f, dt)
	for _, l := range li.Loops {
		fmt.Printf("loop #%d (header %s): divergent branch inside = %v\n",
			l.ID, l.Header.Name, div.LoopHasDivergentBranch(l))
	}
	// With SkipDivergent (the paper's proposed taint extension), the
	// heuristic leaves the loop alone.
	params := core.DefaultHeuristicParams()
	plainDecisions, _ := core.HeuristicDecide(f, params)
	params.SkipDivergent = true
	taintDecisions, _ := core.HeuristicDecide(f, params)
	fmt.Printf("heuristic selections: published heuristic=%d, with divergence taint (paper's §V proposal)=%d\n\n",
		len(plainDecisions), len(taintDecisions))

	ref, err := bench.Reference(b, w)
	if err != nil {
		log.Fatalf("reference: %v", err)
	}
	base, err := bench.Compile(b, pipeline.Options{Config: pipeline.Baseline})
	if err != nil {
		log.Fatalf("baseline: %v", err)
	}
	baseM, err := bench.Execute(base, w, dev, ref)
	if err != nil {
		log.Fatalf("baseline run: %v", err)
	}
	fmt.Printf("%-10s time=%.5f ms  warp_eff=%6.2f%%  stall_fetch=%5.2f%%  code=%d B\n",
		"baseline", baseM.KernelMillis(dev), baseM.WarpExecutionEfficiency(dev)*100,
		baseM.StallInstFetchPct()*100, base.Program.CodeBytes())

	for _, u := range []int{2, 4, 8} {
		cr, err := bench.Compile(b, pipeline.Options{Config: pipeline.UU, LoopID: 0, Factor: u})
		if err != nil {
			log.Fatalf("u&u u=%d: %v", u, err)
		}
		m, err := bench.Execute(cr, w, dev, ref)
		if err != nil {
			log.Fatalf("u&u u=%d run: %v", u, err)
		}
		fmt.Printf("u&u u=%-4d time=%.5f ms  warp_eff=%6.2f%%  stall_fetch=%5.2f%%  code=%d B  (speedup %.3fx)\n",
			u, m.KernelMillis(dev), m.WarpExecutionEfficiency(dev)*100,
			m.StallInstFetchPct()*100, cr.Program.CodeBytes(),
			baseM.KernelMillis(dev)/m.KernelMillis(dev))
	}
	fmt.Println("\nAs in the paper: warp execution efficiency collapses, instruction")
	fmt.Println("fetch stalls blow up, and the slowdown grows with the unroll factor.")
}
