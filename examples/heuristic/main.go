// Heuristic walk-through: sweeps the paper's two heuristic parameters — the
// size budget c and the maximum unroll factor u_max (Section III-C, defaults
// c=1024, u_max=8) — over a few applications, showing which loops get picked
// at which factors and what that does to speedup and code size. Also shows
// the §V taint extension (skip loops with thread-id-dependent branches).
//
//	go run ./examples/heuristic
package main

import (
	"fmt"
	"log"

	"uu/internal/bench"
	"uu/internal/core"
	"uu/internal/gpusim"
	"uu/internal/pipeline"
)

func main() {
	apps := []string{"bezier-surface", "complex", "rainflow", "xsbench"}
	dev := gpusim.V100()

	fmt.Println("heuristic parameter sweep (speedup over baseline / code bytes):")
	fmt.Printf("%-16s %10s", "app", "baseline")
	type setting struct {
		name   string
		params core.HeuristicParams
	}
	settings := []setting{
		{"c=256,u4", core.HeuristicParams{C: 256, UMax: 4}},
		{"c=1024,u8*", core.HeuristicParams{C: 1024, UMax: 8}}, // the paper's setting
		{"c=8192,u8", core.HeuristicParams{C: 8192, UMax: 8}},
		{"taint", core.HeuristicParams{C: 1024, UMax: 8, SkipDivergent: true}},
	}
	for _, s := range settings {
		fmt.Printf(" %18s", s.name)
	}
	fmt.Println()

	for _, app := range apps {
		b := bench.ByName(app)
		w := b.NewWorkload()
		ref, err := bench.Reference(b, w)
		if err != nil {
			log.Fatalf("%s reference: %v", app, err)
		}
		base, err := bench.Compile(b, pipeline.Options{Config: pipeline.Baseline})
		if err != nil {
			log.Fatalf("%s baseline: %v", app, err)
		}
		baseM, err := bench.Execute(base, w, dev, ref)
		if err != nil {
			log.Fatalf("%s baseline run: %v", app, err)
		}
		fmt.Printf("%-16s %7.4fms", app, baseM.KernelMillis(dev))
		for _, s := range settings {
			cr, err := bench.Compile(b, pipeline.Options{Config: pipeline.UUHeuristic, Heuristic: s.params})
			if err != nil {
				log.Fatalf("%s %s: %v", app, s.name, err)
			}
			m, err := bench.Execute(cr, w, dev, ref)
			if err != nil {
				log.Fatalf("%s %s run: %v", app, s.name, err)
			}
			factor := "-"
			if len(cr.Stats.Decisions) > 0 {
				factor = fmt.Sprintf("u%d", cr.Stats.Decisions[0].Factor)
			}
			fmt.Printf(" %7.3fx/%6dB %-3s",
				baseM.KernelMillis(dev)/m.KernelMillis(dev), cr.Program.CodeBytes(), factor)
		}
		fmt.Println()
	}
	fmt.Println("\n(*) the paper's published setting. The taint extension avoids")
	fmt.Println("complex's slowdown by deselecting its thread-id-dependent loop —")
	fmt.Println("but, being a conservative taint (loads from thread-indexed")
	fmt.Println("addresses count as divergent), it also gives up rainflow's and")
	fmt.Println("xsbench's data-dependent wins. bezier-surface, whose conditions")
	fmt.Println("are uniform arithmetic, keeps its speedup.")
}
