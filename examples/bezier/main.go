// Bezier walk-through: the paper's Listing 2 / Figure 5 example. Once
// kn > 1 or nkn > 1 evaluates to false it stays false, so after
// unroll-and-unmerge the re-evaluation folds away on those paths. This
// example prints the per-path structure and the dynamic comparison counts.
//
//	go run ./examples/bezier
package main

import (
	"fmt"
	"log"
	"strings"

	"uu/internal/interp"
	"uu/internal/ir"
	"uu/internal/lang"
	"uu/internal/pipeline"
)

const src = `
kernel bezier_blend(double* restrict out, long nn0, long kn0, long nkn0) {
  long nn = nn0;
  long kn = kn0;
  long nkn = nkn0;
  double blend = 1.0;
  while (nn >= 1) {
    blend *= (double)nn;
    nn--;
    if (kn > 1) {
      blend /= (double)kn;
      kn--;
    }
    if (nkn > 1) {
      blend /= (double)nkn;
      nkn--;
    }
  }
  out[0] = blend;
}
`

func main() {
	fmt.Println("=== Listing 2: the bezier-surface loop ===")
	fmt.Print(src)

	build := func(opts pipeline.Options) *ir.Function {
		f := lang.MustCompileKernel(src)
		if _, err := pipeline.Optimize(f, opts); err != nil {
			log.Fatalf("pipeline %s: %v", opts.Config, err)
		}
		return f
	}
	baseline := build(pipeline.Options{Config: pipeline.Baseline})
	uu := build(pipeline.Options{Config: pipeline.UU, LoopID: 0, Factor: 2})

	countSGT := func(f *ir.Function) int {
		n := 0
		for _, b := range f.Blocks() {
			for _, in := range b.Instrs() {
				if in.Op == ir.OpICmp && in.Pred == ir.SGT {
					n++
				}
			}
		}
		return n
	}
	fmt.Println("=== Figure 5 analogue ===")
	fmt.Printf("baseline:  %d blocks, %d static kn/nkn tests\n",
		baseline.NumBlocks(), countSGT(baseline))
	fmt.Printf("u&u (u=2): %d blocks, %d static kn/nkn tests\n",
		uu.NumBlocks(), countSGT(uu))
	fmt.Println("u&u loop headers and their path provenance (block name suffixes")
	fmt.Println("encode which duplicated path each copy belongs to):")
	for _, b := range uu.Blocks() {
		if strings.Contains(b.Name, ".u1") || strings.Contains(b.Name, ".d") {
			hasTest := false
			for _, in := range b.Instrs() {
				if in.Op == ir.OpICmp && in.Pred == ir.SGT {
					hasTest = true
				}
			}
			if strings.HasPrefix(b.Name, "while.cond") || strings.HasPrefix(b.Name, "if") {
				fmt.Printf("  %-28s re-tests a condition: %v\n", b.Name, hasTest)
			}
		}
	}

	// Dynamic comparison counts: once the conditions turn false, the FF path
	// runs compare-free (the Figure 5 elimination).
	dynamic := func(f *ir.Function) (int64, float64) {
		ctr := &interp.Counters{Ops: map[ir.Op]int64{}}
		mem := interp.NewMemory(8)
		args := []interp.Value{interp.IntVal(0), interp.IntVal(40), interp.IntVal(4), interp.IntVal(7)}
		if _, err := interp.RunCounted(f, args, mem, interp.Env{}, ctr); err != nil {
			log.Fatalf("interp: %v", err)
		}
		return ctr.Ops[ir.OpICmp], mem.F64(0, 0)
	}
	bCmps, bResult := dynamic(baseline)
	uCmps, uResult := dynamic(uu)
	fmt.Printf("\ndynamic compares for blend(40, 4, 7): baseline=%d, u&u=%d (-%0.f%%)\n",
		bCmps, uCmps, 100*float64(bCmps-uCmps)/float64(bCmps))
	if bResult != uResult {
		log.Fatalf("results differ: %v vs %v", bResult, uResult)
	}
	fmt.Printf("identical result: %g\n", uResult)
}
