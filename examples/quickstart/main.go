// Quickstart: compile a small CUDA-like kernel, optimize it with the
// baseline -O3 pipeline and with unroll-and-unmerge, execute both on the
// SIMT simulator, and compare kernel time and counters.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"uu/internal/codegen"
	"uu/internal/gpusim"
	"uu/internal/interp"
	"uu/internal/lang"
	"uu/internal/pipeline"
)

// A toy kernel with the shape the paper targets: a loop whose body branches
// on loop-carried state, so unmerging exposes the provenance of each
// condition to later iterations.
const src = `
kernel decay(double* restrict out, long n, long k0) {
  long gid = (long)global_id();
  if (gid >= n) { return; }
  double acc = 1.0 + (double)gid * 0.001;
  long k = k0;
  while (k >= 1) {
    acc *= 1.0001;
    if (k > 3) {
      acc *= 0.5;
      k -= 2;
    } else {
      acc += 0.25;
      k--;
    }
  }
  out[gid] = acc;
}
`

func main() {
	const n = 1024
	dev := gpusim.V100()
	launch := gpusim.Launch{GridDim: n / 128, BlockDim: 128}
	args := []interp.Value{interp.IntVal(0), interp.IntVal(n), interp.IntVal(40)}

	run := func(opts pipeline.Options) (*gpusim.Metrics, *interp.Memory) {
		f := lang.MustCompileKernel(src)
		if _, err := pipeline.Optimize(f, opts); err != nil {
			log.Fatalf("pipeline: %v", err)
		}
		prog, err := codegen.Lower(f)
		if err != nil {
			log.Fatalf("codegen: %v", err)
		}
		mem := interp.NewMemory(8 * n)
		m, err := gpusim.Run(prog, args, mem, launch, dev)
		if err != nil {
			log.Fatalf("sim: %v", err)
		}
		fmt.Printf("%-12s  time=%.5f ms  thread-instrs=%-8d inst_misc=%-7d code=%d B\n",
			opts.Config, m.KernelMillis(dev), m.ThreadInstrs,
			m.ClassThread[codegen.ClassMisc], prog.CodeBytes())
		return m, mem
	}

	fmt.Println("config        metrics")
	base, baseMem := run(pipeline.Options{Config: pipeline.Baseline})
	uu, uuMem := run(pipeline.Options{Config: pipeline.UU, LoopID: 0, Factor: 4})

	// The transformation must not change results.
	for i := int64(0); i < n; i++ {
		if baseMem.F64(0, i) != uuMem.F64(0, i) {
			log.Fatalf("result mismatch at %d: %v vs %v", i, baseMem.F64(0, i), uuMem.F64(0, i))
		}
	}
	fmt.Printf("\nresults identical; u&u speedup over baseline: %.3fx\n",
		base.KernelMillis(dev)/uu.KernelMillis(dev))
}
