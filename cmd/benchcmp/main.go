// Command benchcmp guards the threaded executor's speedup against
// regression. It reads two files of `go test -bench BenchmarkWarpSim`
// output, each split into `# exec=switch` / `# exec=threaded` sections
// (the checked-in baseline is results/warpsim-bench.txt), reduces each
// (exec, case) cell to the median instrs/s over its repeats
// (benchstat-style, N=5 in CI), and compares the threaded/switch speedup
// ratio per case. Comparing ratios rather than absolute rates makes the
// check portable across machines: CI hardware differs from the machine
// the baseline was recorded on, but the relative advantage of the
// threaded core over the switch core on the same box should not.
//
// Usage:
//
//	benchcmp -baseline results/warpsim-bench.txt -new bench-new.txt [-tol 0.10]
//
// Exits non-zero if any case's new ratio falls more than -tol below the
// baseline ratio.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// sections maps exec name -> case name -> observed instrs/s rates.
type sections map[string]map[string][]float64

// parseFile reads bench output split by `# exec=<name>` headers. Lines
// outside a section or without an instrs/s metric are ignored, so raw
// `go test -bench` output (with goos/pkg/ok chatter) parses as-is.
func parseFile(path string) (sections, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	secs := sections{}
	var cur map[string][]float64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if name, ok := strings.CutPrefix(line, "# exec="); ok {
			name = strings.TrimSpace(name)
			if secs[name] == nil {
				secs[name] = map[string][]float64{}
			}
			cur = secs[name]
			continue
		}
		if cur == nil || !strings.HasPrefix(line, "BenchmarkWarpSim/") {
			continue
		}
		fields := strings.Fields(line)
		rate := -1.0
		for i := 1; i < len(fields); i++ {
			if fields[i] == "instrs/s" {
				v, err := strconv.ParseFloat(fields[i-1], 64)
				if err != nil {
					return nil, fmt.Errorf("%s: bad instrs/s value in %q", path, line)
				}
				rate = v
			}
		}
		if rate < 0 {
			continue
		}
		name := strings.TrimPrefix(fields[0], "BenchmarkWarpSim/")
		// Strip the -GOMAXPROCS suffix go test appends to subbenchmarks.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		cur[name] = append(cur[name], rate)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return secs, nil
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// ratios reduces a parsed file to case -> threaded/switch median-rate
// ratio, requiring both sections to cover the same cases.
func ratios(secs sections, path string) (map[string]float64, error) {
	sw, th := secs["switch"], secs["threaded"]
	if len(sw) == 0 || len(th) == 0 {
		return nil, fmt.Errorf("%s: need both '# exec=switch' and '# exec=threaded' sections", path)
	}
	out := map[string]float64{}
	for name, swRates := range sw {
		thRates, ok := th[name]
		if !ok {
			return nil, fmt.Errorf("%s: case %q present for switch but not threaded", path, name)
		}
		out[name] = median(thRates) / median(swRates)
	}
	for name := range th {
		if _, ok := sw[name]; !ok {
			return nil, fmt.Errorf("%s: case %q present for threaded but not switch", path, name)
		}
	}
	return out, nil
}

func main() {
	baseline := flag.String("baseline", "results/warpsim-bench.txt", "recorded baseline bench output")
	newFile := flag.String("new", "", "freshly measured bench output to compare (required)")
	tol := flag.Float64("tol", 0.10, "allowed relative drop of the threaded/switch ratio")
	flag.Parse()
	if *newFile == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: -new is required")
		flag.Usage()
		os.Exit(2)
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	baseSecs, err := parseFile(*baseline)
	if err != nil {
		fail(err)
	}
	newSecs, err := parseFile(*newFile)
	if err != nil {
		fail(err)
	}
	baseR, err := ratios(baseSecs, *baseline)
	if err != nil {
		fail(err)
	}
	newR, err := ratios(newSecs, *newFile)
	if err != nil {
		fail(err)
	}

	names := make([]string, 0, len(baseR))
	for name := range baseR {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%-16s %14s %14s %8s\n", "case", "base speedup", "new speedup", "delta")
	regressed := false
	for _, name := range names {
		b := baseR[name]
		n, ok := newR[name]
		if !ok {
			fail(fmt.Errorf("case %q in baseline missing from %s", name, *newFile))
		}
		delta := n/b - 1
		mark := ""
		if n < b*(1-*tol) {
			mark = "  REGRESSED"
			regressed = true
		}
		fmt.Printf("%-16s %13.2fx %13.2fx %+7.1f%%%s\n", name, b, n, 100*delta, mark)
	}
	if regressed {
		fmt.Fprintf(os.Stderr, "benchcmp: threaded/switch speedup regressed by more than %.0f%% vs %s\n", 100**tol, *baseline)
		os.Exit(1)
	}
}
