// Command uubench regenerates the paper's evaluation artifacts: Table I and
// Figures 6a, 6b, 6c, 7, 8a, 8b (as text tables), plus the Section V
// counter reports for the in-depth-analysis applications.
//
// Usage:
//
//	uubench -all -out results/
//	uubench -table1
//	uubench -fig6a -fig6b -fig6c -apps xsbench,rainflow
//	uubench -fig7 -fig8 -verify
//	uubench -pgo -apps xsbench,rainflow,complex,bezier-surface -out results/
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"uu/internal/bench"
	"uu/internal/core"
	"uu/internal/gpusim"
	"uu/internal/pipeline"
	"uu/internal/profile"
	"uu/internal/remark"
)

func main() {
	var (
		all        = flag.Bool("all", false, "produce every table and figure")
		table1     = flag.Bool("table1", false, "produce Table I")
		fig6a      = flag.Bool("fig6a", false, "produce Figure 6a (speedup)")
		fig6b      = flag.Bool("fig6b", false, "produce Figure 6b (code size)")
		fig6c      = flag.Bool("fig6c", false, "produce Figure 6c (compile time)")
		fig7       = flag.Bool("fig7", false, "produce Figure 7 (uu vs unroll vs unmerge)")
		fig8       = flag.Bool("fig8", false, "produce Figures 8a/8b (scatter data)")
		counters   = flag.Bool("counters", false, "produce the Section V counter reports")
		ablations  = flag.Bool("ablations", false, "produce the design-choice ablation tables")
		device     = flag.String("device", "V100", "device model for the campaign: a registry name with optional overrides, e.g. V100, MinSPPC, Vortex:warpsize=8 (see gpusim.ParseDevice)")
		deviceMx   = flag.String("device-matrix", "", "run the campaign once per device and produce the cross-device robustness report (device-matrix.txt): comma-separated device specs, or 'all' for the full registry")
		inputMode  = flag.String("input", "coherent", "input mode for the single-device campaign: coherent or noise")
		inputsCSV  = flag.String("inputs", "", "input modes swept by -device-matrix: comma-separated, or 'all' (default: coherent only)")
		appsCSV    = flag.String("apps", "", "comma-separated subset of applications (default: all 16)")
		factors    = flag.String("factors", "2,4,8", "unroll factors to sweep")
		verify     = flag.Bool("verify", false, "validate every run against the reference interpreter")
		outDir     = flag.String("out", "", "write artifacts into this directory instead of stdout")
		quiet      = flag.Bool("q", false, "suppress per-run progress")
		workers    = flag.Int("workers", 0, "concurrent measurement goroutines (0 = GOMAXPROCS)")
		simWorkers = flag.Int("sim-workers", 1, "warp-scheduling workers per simulation (metrics are identical for any count)")
		execStr    = flag.String("exec", "", "simulator execution backend: switch or threaded (default: the device's; metrics are identical for either)")
		contain    = flag.Bool("contain", false, "run every compilation under the crash-containment guard: a crashing pass is rolled back and skipped instead of aborting the campaign")
		verifyEach = flag.Bool("verify-each", false, "run the IR verifier after every pass (a rejected pass counts as a contained failure with -contain)")
		remarksStr = flag.String("remarks", "", "collect optimization remarks and write them as remarks.yaml: all|passed|missed|analysis (comma-separable); deterministic across -workers/-sim-workers counts")
		tracePath  = flag.String("trace", "", "write a Chrome trace_event JSON of the whole campaign (compiles, passes, simulations) to this file")
		profileOn  = flag.Bool("profile", false, "collect per-PC hotspot profiles and write hotspots.txt (per-loop/per-line tables plus the heuristic predicted-vs-measured join) and per-app profile-<app>.folded / profile-<app>.pb.gz; deterministic across -workers/-sim-workers counts")
		pgoOn      = flag.Bool("pgo", false, "run the profile-guided campaign: iterate compile→simulate→recompile, feeding measured per-loop signals back into the heuristic as overrides until the predicted-vs-measured table is stable; writes pgo.txt and exits 1 if any MISPREDICT survives the final round")
		pgoRounds  = flag.Int("pgo-rounds", 4, "maximum PGO feedback rounds")
		pgoSeed    = flag.String("pgo-seed", "", "seed per-app PGO overrides, e.g. 'complex=L10:force+cap=8;xsbench=L11:deny' (the recovery case study seeds complex's u=8 collapse)")
		selective  = flag.Bool("selective", false, "run uu-heuristic in selective-unmerge mode (only benefit-predicted merge blocks are duplicated) for the campaign and PGO runs")
		wallclock  = flag.Bool("wallclock", false, "write wallclock.txt: host-side compile/simulate/run latency histograms for the campaign (throughput telemetry, varies with machine load — not a paper artifact)")
	)
	flag.Parse()
	if *all {
		*table1, *fig6a, *fig6b, *fig6c, *fig7, *fig8, *counters, *ablations = true, true, true, true, true, true, true, true
	}
	if !(*table1 || *fig6a || *fig6b || *fig6c || *fig7 || *fig8 || *counters || *ablations || *profileOn || *pgoOn || *wallclock || *deviceMx != "") {
		flag.Usage()
		os.Exit(2)
	}

	devCfg, devName, err := gpusim.ParseDevice(*device)
	if err != nil {
		fatal(err)
	}
	if *execStr != "" {
		exec, err := gpusim.ParseExec(*execStr)
		if err != nil {
			fatal(err)
		}
		devCfg.Exec = exec
	}
	input, err := bench.ParseInputMode(*inputMode)
	if err != nil {
		fatal(err)
	}
	opts := bench.HarnessOptions{
		Verify:     *verify,
		Device:     &devCfg,
		DeviceName: devName,
		Input:      input,
		Workers:    *workers,
		SimWorkers: *simWorkers,
		Contain:    *contain,
		VerifyEach: *verifyEach,
		Profile:    *profileOn,
		Heuristic:  core.HeuristicParams{Selective: *selective},
	}
	var remarkKinds map[remark.Kind]bool
	if *remarksStr != "" {
		kinds, err := remark.ParseKinds(*remarksStr)
		if err != nil {
			fatal(err)
		}
		remarkKinds = kinds
		opts.Remarks = true
	}
	var trace *remark.Trace
	if *tracePath != "" {
		trace = remark.NewTrace()
		opts.Trace = trace
	}
	if *appsCSV != "" {
		opts.Apps = strings.Split(*appsCSV, ",")
	}
	for _, fs := range strings.Split(*factors, ",") {
		u, err := strconv.Atoi(strings.TrimSpace(fs))
		if err != nil || u < 1 {
			fatal(fmt.Errorf("bad factor %q", fs))
		}
		opts.Factors = append(opts.Factors, u)
	}
	if !*quiet {
		opts.Progress = os.Stderr
	}

	// SIGINT/SIGTERM cancels the campaign context: workers stop at the next
	// pass or warp-block boundary and the completed runs are still written
	// out below as partial artifacts. A second signal kills the process.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	interrupted := false

	var res *bench.Results
	if *table1 || *fig6a || *fig6b || *fig6c || *fig7 || *fig8 || *counters || *profileOn || *wallclock {
		var err error
		res, err = bench.RunExperimentsCtx(ctx, opts)
		if err != nil {
			if res == nil || ctx.Err() == nil {
				fatal(err)
			}
			interrupted = true
			fmt.Fprintf(os.Stderr, "uubench: %v; flushing partial results\n", err)
		}
		fmt.Fprintf(os.Stderr, "uubench: campaign device=%s input=%s\n", res.DeviceName, res.Input)
		for _, pf := range res.Failures {
			fmt.Fprintf(os.Stderr, "uubench: contained pass failure: %s\n", pf.String())
		}
	}

	sink := func(name string) (*os.File, func()) {
		if *outDir == "" {
			fmt.Printf("\n===== %s =====\n", name)
			return os.Stdout, func() {}
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		f, err := os.Create(filepath.Join(*outDir, name))
		if err != nil {
			fatal(err)
		}
		return f, func() { f.Close() }
	}

	if *table1 {
		w, done := sink("table1.txt")
		bench.WriteTable1(w, res)
		done()
	}
	if *fig6a {
		w, done := sink("fig6a.txt")
		bench.WriteFig6a(w, res)
		done()
	}
	if *fig6b {
		w, done := sink("fig6b.txt")
		bench.WriteFig6b(w, res)
		done()
	}
	if *fig6c {
		w, done := sink("fig6c.txt")
		bench.WriteFig6c(w, res)
		done()
	}
	if *fig7 {
		w, done := sink("fig7.txt")
		bench.WriteFig7(w, res)
		done()
	}
	if *fig8 {
		w, done := sink("fig8.txt")
		bench.WriteFig8(w, res)
		done()
	}
	if *ablations {
		w, done := sink("ablations.txt")
		for _, spec := range []struct {
			app          string
			loop, factor int
		}{{"bezier-surface", 1, 2}, {"rainflow", 0, 4}, {"xsbench", 0, 2}, {"complex", 0, 4}} {
			rows, err := bench.RunAblations(spec.app, spec.loop, spec.factor, devCfg)
			if err != nil {
				fatal(err)
			}
			bench.WriteAblations(w, spec.app, spec.loop, spec.factor, rows)
			fmt.Fprintln(w)
		}
		done()
	}
	if *counters {
		w, done := sink("counters.txt")
		for _, spec := range []struct {
			app    string
			factor int
		}{{"xsbench", 2}, {"xsbench", 8}, {"rainflow", 4}, {"complex", 8}, {"bezier-surface", 2}} {
			if res.Baseline[spec.app] == nil {
				continue
			}
			if rec := res.Best(spec.app, pipeline.UU, spec.factor); rec != nil {
				bench.WriteCounterReport(w, res, spec.app, rec)
				fmt.Fprintln(w)
			}
		}
		done()
	}

	if *deviceMx != "" {
		mxOpts := bench.MatrixOptions{Harness: opts}
		if !strings.EqualFold(*deviceMx, "all") {
			mxOpts.Devices = splitCSV(*deviceMx)
		}
		switch {
		case strings.EqualFold(*inputsCSV, "all"):
			mxOpts.Inputs = bench.InputModes()
		case *inputsCSV != "":
			for _, s := range splitCSV(*inputsCSV) {
				in, err := bench.ParseInputMode(s)
				if err != nil {
					fatal(err)
				}
				mxOpts.Inputs = append(mxOpts.Inputs, in)
			}
		}
		mx, err := bench.RunMatrixCtx(ctx, mxOpts)
		if err != nil {
			if mx == nil || ctx.Err() == nil {
				fatal(err)
			}
			interrupted = true
			fmt.Fprintf(os.Stderr, "uubench: %v; flushing partial results\n", err)
		}
		w, done := sink("device-matrix.txt")
		bench.WriteDeviceMatrix(w, mx)
		done()
	}

	mispredicts := 0
	if *pgoOn {
		seed, err := parsePGOSeed(*pgoSeed)
		if err != nil {
			fatal(err)
		}
		popts := bench.PGOOptions{
			Apps:       opts.Apps,
			MaxRounds:  *pgoRounds,
			Device:     &devCfg,
			DeviceName: devName,
			Input:      input,
			Workers:    *workers,
			SimWorkers: *simWorkers,
			Heuristic:  opts.Heuristic,
			Seed:       seed,
		}
		if !*quiet {
			popts.Progress = os.Stderr
		}
		pres, err := bench.RunPGOCtx(ctx, popts)
		if err != nil {
			if pres == nil || ctx.Err() == nil {
				fatal(err)
			}
			interrupted = true
			fmt.Fprintf(os.Stderr, "uubench: %v; flushing partial results\n", err)
		}
		w, done := sink("pgo.txt")
		if err := bench.WritePGOReport(w, pres); err != nil {
			fatal(err)
		}
		done()
		mispredicts = pres.Mispredicts()
		if !pres.Converged {
			fmt.Fprintf(os.Stderr, "uubench: pgo did not converge within %d rounds\n", *pgoRounds)
		}
		if mispredicts > 0 {
			fmt.Fprintf(os.Stderr, "uubench: pgo finished with %d surviving MISPREDICT verdict(s)\n", mispredicts)
		}
	}

	if *profileOn && res != nil {
		w, done := sink("hotspots.txt")
		if err := bench.WriteProfileReport(w, res); err != nil {
			fatal(err)
		}
		done()
		writeProfileArtifacts(res, *outDir, sink)
	}
	if *wallclock && res != nil {
		w, done := sink("wallclock.txt")
		bench.WriteWallClock(w, res)
		done()
	}
	if opts.Remarks && res != nil {
		w, done := sink("remarks.yaml")
		if err := remark.WriteYAML(w, res.Remarks, remarkKinds); err != nil {
			fatal(err)
		}
		done()
	}
	if trace != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	// Artifacts produced under contained failures describe degraded
	// pipelines (the crashing passes were skipped); flag that to callers.
	if res != nil && len(res.Failures) > 0 {
		fmt.Fprintf(os.Stderr, "uubench: %d pass invocations were contained; results reflect skipped passes\n", len(res.Failures))
		if !interrupted {
			os.Exit(1)
		}
	}
	if interrupted {
		os.Exit(130)
	}
	if mispredicts > 0 {
		os.Exit(1)
	}
}

// parsePGOSeed parses the -pgo-seed syntax: semicolon-separated
// app=<override-set> items, each override set in core.ParseOverrides form.
func parsePGOSeed(s string) (map[string]map[int32]core.LoopOverride, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	out := map[string]map[int32]core.LoopOverride{}
	for _, item := range strings.Split(s, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		app, spec, ok := strings.Cut(item, "=")
		if !ok {
			return nil, fmt.Errorf("bad -pgo-seed item %q (want app=L<line>:<directive>)", item)
		}
		ov, err := core.ParseOverrides(spec)
		if err != nil {
			return nil, err
		}
		out[strings.TrimSpace(app)] = ov
	}
	return out, nil
}

// writeProfileArtifacts writes the per-app heuristic flamegraph inputs:
// profile-<app>.folded through the sink and, when -out is set, the binary
// profile-<app>.pb.gz (binary artifacts make no sense on stdout and are
// skipped with a note).
func writeProfileArtifacts(res *bench.Results, outDir string, sink func(string) (*os.File, func())) {
	apps := make([]string, 0, len(res.Heuristic))
	for app := range res.Heuristic {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	for _, app := range apps {
		rec := res.Heuristic[app]
		if rec == nil || rec.Profile == nil {
			continue
		}
		rep := profile.Build(rec.Program, rec.Profile)
		w, done := sink("profile-" + app + ".folded")
		if err := profile.WriteFolded(w, rep); err != nil {
			fatal(err)
		}
		done()
		if outDir == "" {
			fmt.Fprintf(os.Stderr, "uubench: profile-%s.pb.gz requires -out; skipped\n", app)
			continue
		}
		f, err := os.Create(filepath.Join(outDir, "profile-"+app+".pb.gz"))
		if err != nil {
			fatal(err)
		}
		if err := profile.WritePprof(f, rep); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

// splitCSV splits a comma-separated flag value, trimming whitespace and
// dropping empty items.
func splitCSV(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uubench:", err)
	os.Exit(1)
}
