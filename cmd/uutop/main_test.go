package main

import (
	"strings"
	"testing"
	"time"
)

const sampleScrape = `# HELP serve_requests_total See docs/METRICS.md.
# TYPE serve_requests_total counter
serve_requests_total 100
# HELP serve_cache_hits_total See docs/METRICS.md.
# TYPE serve_cache_hits_total counter
serve_cache_hits_total 25
# HELP serve_queue_depth Jobs waiting.
# TYPE serve_queue_depth gauge
serve_queue_depth 3
# HELP serve_queue_capacity Queue capacity.
# TYPE serve_queue_capacity gauge
serve_queue_capacity 16
# HELP serve_request_seconds End-to-end latency.
# TYPE serve_request_seconds histogram
serve_request_seconds_bucket{le="0.001"} 10
serve_request_seconds_bucket{le="0.01"} 60
serve_request_seconds_bucket{le="0.1"} 99
serve_request_seconds_bucket{le="+Inf"} 100
serve_request_seconds_sum 1.5
serve_request_seconds_count 100
# HELP serve_phase_seconds Per-phase latency.
# TYPE serve_phase_seconds histogram
serve_phase_seconds_bucket{phase="compile",le="0.01"} 40
serve_phase_seconds_bucket{phase="compile",le="+Inf"} 50
serve_phase_seconds_sum{phase="compile"} 0.9
serve_phase_seconds_count{phase="compile"} 50
serve_phase_seconds_bucket{phase="simulate",le="0.02"} 50
serve_phase_seconds_bucket{phase="simulate",le="+Inf"} 50
serve_phase_seconds_sum{phase="simulate"} 0.4
serve_phase_seconds_count{phase="simulate"} 50
`

func parse(t *testing.T, text string) *scrape {
	t.Helper()
	s, err := parseMetrics(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseMetrics(t *testing.T) {
	s := parse(t, sampleScrape)
	if got := s.value("serve_requests_total"); got != 100 {
		t.Errorf("requests = %g, want 100", got)
	}
	if got := s.value("serve_queue_depth"); got != 3 {
		t.Errorf("queue depth = %g, want 3", got)
	}
	req := s.hists["serve_request_seconds"]
	if req == nil {
		t.Fatal("request histogram not parsed")
	}
	if req.count != 100 || req.sum != 1.5 || len(req.buckets) != 4 {
		t.Fatalf("request histogram count=%g sum=%g buckets=%d", req.count, req.sum, len(req.buckets))
	}
	comp := s.hists[`serve_phase_seconds{phase="compile"}`]
	if comp == nil || comp.count != 50 {
		t.Fatalf("compile phase histogram not parsed: %+v", comp)
	}
	if sim := s.hists[`serve_phase_seconds{phase="simulate"}`]; sim == nil || sim.count != 50 {
		t.Fatalf("simulate phase histogram not parsed: %+v", sim)
	}
}

func TestHistQuantile(t *testing.T) {
	s := parse(t, sampleScrape)
	req := s.hists["serve_request_seconds"]
	// rank 50 falls in the (0.001, 0.01] bucket, cum 10→60: 40/50 through.
	if got, want := req.quantile(0.5), 0.001+(0.01-0.001)*0.8; !approxEq(got, want) {
		t.Errorf("p50 = %g, want %g", got, want)
	}
	// rank 99 is exactly the 0.1 bucket's cum.
	if got := req.quantile(0.99); !approxEq(got, 0.1) {
		t.Errorf("p99 = %g, want 0.1", got)
	}
	// p100 lands in +Inf: report the last finite bound.
	if got := req.quantile(1); !approxEq(got, 0.1) {
		t.Errorf("p100 = %g, want 0.1 (last finite bound)", got)
	}
	if got := (&hist{}).quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", got)
	}
}

func TestHistDeltaAndSLO(t *testing.T) {
	prev := parse(t, sampleScrape)
	cur := parse(t, sampleScrape)
	// Advance: 20 new requests, all fast (≤1ms).
	curReq := cur.hists["serve_request_seconds"]
	for i := range curReq.buckets {
		curReq.buckets[i].cum += 20
	}
	curReq.count += 20

	d := curReq.delta(prev.hists["serve_request_seconds"])
	if d.count != 20 {
		t.Fatalf("delta count = %g, want 20", d.count)
	}
	if got := d.countAtOrBelow(0.001); got != 20 {
		t.Errorf("delta fast-bucket count = %g, want 20", got)
	}

	// SLO at 100ms, target 99%: cumulative has 99/120 + 20 = 119/120 within.
	line := sloLine(curReq, prev.hists["serve_request_seconds"], 100*time.Millisecond, 99)
	if !strings.Contains(line, "[total]") || !strings.Contains(line, "[window]") {
		t.Fatalf("SLO line missing total/window: %q", line)
	}
	if !strings.Contains(line, "burn 0.00x") { // window: all 20 within SLO
		t.Errorf("window burn should be 0: %q", line)
	}
}

func TestRenderFrame(t *testing.T) {
	prev := parse(t, sampleScrape)
	cur := parse(t, strings.Replace(sampleScrape, "serve_requests_total 100", "serve_requests_total 120", 1))
	out := render(cur, prev, 2*time.Second, "http://x:1", 500*time.Millisecond, 99)
	for _, want := range []string{
		"requests", "10.0/s", // (120-100)/2s
		"queue  3/16", "compile", "simulate", "request", "SLO",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	// First frame (no prev) must render without panicking.
	if out := render(cur, nil, time.Second, "http://x:1", 500*time.Millisecond, 99); !strings.Contains(out, "request") {
		t.Errorf("first frame broken:\n%s", out)
	}
}

func approxEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-12
}
