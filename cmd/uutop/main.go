// Command uutop is a live terminal dashboard for a running uud daemon: it
// polls GET /metrics (the Prometheus text exposition) and renders request
// rate, queue and in-flight levels, cache effectiveness, shed and error
// rates, and per-phase latency quantiles against a configurable SLO with
// error-budget burn — everything an operator watches during a load drill
// or a drain, with no dependency beyond the standard library.
//
// Rates and the SLO window are computed from the delta between
// consecutive scrapes; quantiles come from the cumulative histogram
// buckets (log-linear, ≤ 3.1% relative error — docs/OBSERVABILITY.md).
//
// Usage:
//
//	uutop -addr http://localhost:8077
//	uutop -interval 1s -slo 250ms -slo-target 99 -n 10
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"
)

func main() {
	var (
		addr      = flag.String("addr", "http://localhost:8077", "uud base URL (a bare host:port gets http:// prepended)")
		interval  = flag.Duration("interval", 2*time.Second, "poll interval")
		n         = flag.Int("n", 0, "number of polls (0 = until interrupted)")
		slo       = flag.Duration("slo", 500*time.Millisecond, "end-to-end latency SLO threshold")
		sloTarget = flag.Float64("slo-target", 99, "percent of requests that must meet the SLO")
		noClear   = flag.Bool("no-clear", false, "append frames instead of redrawing in place")
	)
	flag.Parse()
	base := strings.TrimSuffix(*addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}

	var prev *scrape
	for i := 0; *n == 0 || i < *n; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		cur, err := fetch(base + "/metrics")
		if err != nil {
			fmt.Fprintln(os.Stderr, "uutop:", err)
			os.Exit(1)
		}
		if !*noClear {
			fmt.Print("\033[H\033[2J") // cursor home + clear
		}
		fmt.Print(render(cur, prev, *interval, base, *slo, *sloTarget))
		prev = cur
	}
}

func fetch(url string) (*scrape, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("GET %s: status %d (is uud running with telemetry enabled?)", url, resp.StatusCode)
	}
	return parseMetrics(resp.Body)
}

// scrape is one parsed /metrics exposition: scalar samples keyed by
// "name" or `name{labels}`, histograms keyed by family plus non-le
// labels.
type scrape struct {
	at      time.Time
	samples map[string]float64
	hists   map[string]*hist
}

// hist is one histogram series: cumulative bucket counts in le order.
type hist struct {
	buckets []bkt
	sum     float64
	count   float64
}

type bkt struct {
	le  float64 // upper bound, seconds (+Inf = math.Inf)
	cum float64 // cumulative count ≤ le
}

// parseMetrics reads the Prometheus text exposition format (the subset
// internal/telemetry emits: no escaping inside label values, one
// optional label plus le).
func parseMetrics(r io.Reader) (*scrape, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	s := &scrape{at: time.Now(), samples: map[string]float64{}, hists: map[string]*hist{}}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		key, valStr := line[:sp], line[sp+1:]
		var val float64
		if _, err := fmt.Sscanf(valStr, "%g", &val); err != nil {
			continue
		}
		name, labels := splitLabels(key)
		if le, rest, ok := extractLe(labels); ok && strings.HasSuffix(name, "_bucket") {
			fam := strings.TrimSuffix(name, "_bucket")
			h := s.histFor(fam, rest)
			h.buckets = append(h.buckets, bkt{le: le, cum: val})
			continue
		}
		switch {
		case strings.HasSuffix(name, "_sum") && s.maybeHist(strings.TrimSuffix(name, "_sum"), labels):
			s.histFor(strings.TrimSuffix(name, "_sum"), labels).sum = val
		case strings.HasSuffix(name, "_count") && s.maybeHist(strings.TrimSuffix(name, "_count"), labels):
			s.histFor(strings.TrimSuffix(name, "_count"), labels).count = val
		default:
			s.samples[key] = val
		}
	}
	for _, h := range s.hists {
		sort.Slice(h.buckets, func(i, j int) bool { return h.buckets[i].le < h.buckets[j].le })
	}
	return s, nil
}

// splitLabels separates `name{a="b"}` into name and `a="b"`.
func splitLabels(key string) (name, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 && strings.HasSuffix(key, "}") {
		return key[:i], key[i+1 : len(key)-1]
	}
	return key, ""
}

// extractLe pulls the le label out of a label block, returning the bound
// in seconds and the remaining labels.
func extractLe(labels string) (le float64, rest string, ok bool) {
	var kept []string
	for _, part := range strings.Split(labels, ",") {
		if strings.HasPrefix(part, `le="`) {
			v := strings.TrimSuffix(strings.TrimPrefix(part, `le="`), `"`)
			if v == "+Inf" {
				le, ok = inf(), true
				continue
			}
			if _, err := fmt.Sscanf(v, "%g", &le); err == nil {
				ok = true
			}
			continue
		}
		if part != "" {
			kept = append(kept, part)
		}
	}
	return le, strings.Join(kept, ","), ok
}

func inf() float64 { return math.Inf(1) }

// histKey joins a family name with its non-le labels.
func histKey(fam, labels string) string {
	if labels == "" {
		return fam
	}
	return fam + "{" + labels + "}"
}

func (s *scrape) histFor(fam, labels string) *hist {
	k := histKey(fam, labels)
	h := s.hists[k]
	if h == nil {
		h = &hist{}
		s.hists[k] = h
	}
	return h
}

// maybeHist reports whether a _sum/_count sample belongs to a histogram
// already seen (its _bucket lines precede it in the exposition).
func (s *scrape) maybeHist(fam, labels string) bool {
	_, ok := s.hists[histKey(fam, labels)]
	return ok
}

func (s *scrape) value(key string) float64 { return s.samples[key] }

// quantile extracts a quantile from cumulative buckets: the upper bound
// of the first bucket reaching rank q·count, with linear interpolation
// inside the bucket (the histogram_quantile convention). Returns seconds.
func (h *hist) quantile(q float64) float64 {
	if h == nil || h.count == 0 || len(h.buckets) == 0 {
		return 0
	}
	rank := q * h.count
	var prevCum, prevLe float64
	for _, b := range h.buckets {
		if b.cum >= rank {
			if b.le >= inf() {
				return prevLe // open-ended top bucket: report the last finite bound
			}
			inBucket := b.cum - prevCum
			if inBucket <= 0 {
				return b.le
			}
			frac := (rank - prevCum) / inBucket
			return prevLe + (b.le-prevLe)*frac
		}
		prevCum, prevLe = b.cum, b.le
	}
	return prevLe
}

// countAtOrBelow returns the cumulative count at the first bucket bound
// ≥ thresh (seconds).
func (h *hist) countAtOrBelow(thresh float64) float64 {
	if h == nil {
		return 0
	}
	for _, b := range h.buckets {
		if b.le >= thresh {
			return b.cum
		}
	}
	if n := len(h.buckets); n > 0 {
		return h.buckets[n-1].cum
	}
	return 0
}

// delta returns the per-window histogram cur − prev (both cumulative).
// A nil prev (first frame) returns cur.
func (h *hist) delta(prev *hist) *hist {
	if prev == nil {
		return h
	}
	d := &hist{sum: h.sum - prev.sum, count: h.count - prev.count}
	prevCum := map[float64]float64{}
	for _, b := range prev.buckets {
		prevCum[b.le] = b.cum
	}
	for _, b := range h.buckets {
		d.buckets = append(d.buckets, bkt{le: b.le, cum: b.cum - prevCum[b.le]})
	}
	return d
}

// phaseOrder mirrors serve.phaseNames; unknown phases render after these.
var phaseOrder = []string{"frontend", "resolve", "admission", "compile", "simulate", "encode"}

// render draws one dashboard frame.
func render(cur, prev *scrape, interval time.Duration, addr string, slo time.Duration, sloTarget float64) string {
	var sb strings.Builder
	secs := interval.Seconds()
	rate := func(name string) float64 {
		if prev == nil {
			return 0
		}
		return (cur.value(name) - prev.value(name)) / secs
	}

	requests := cur.value("serve_requests_total")
	hits, coal := cur.value("serve_cache_hits_total"), cur.value("serve_coalesced_total")
	hitPct, coalPct := 0.0, 0.0
	if requests > 0 {
		hitPct = 100 * hits / requests
		coalPct = 100 * coal / requests
	}
	errRate := rate("serve_failed_total") + rate("serve_panics_total") +
		rate("serve_deadline_expired_total") + rate("serve_canceled_total") + rate("serve_malformed_total")

	draining := "no"
	if cur.value("serve_draining") > 0 {
		draining = "YES"
	}

	fmt.Fprintf(&sb, "uutop — %s   %s\n\n", addr, cur.at.Format("15:04:05"))
	fmt.Fprintf(&sb, "requests %8.0f  %7.1f/s     cache hit %5.1f%%   coalesced %5.1f%%\n",
		requests, rate("serve_requests_total"), hitPct, coalPct)
	fmt.Fprintf(&sb, "compiles %8.0f  %7.1f/s     shed %7.1f/s    errors %7.1f/s\n",
		cur.value("serve_compiles_total"), rate("serve_compiles_total"), rate("serve_shed_total"), errRate)
	fmt.Fprintf(&sb, "queue %2.0f/%-2.0f   inflight req %2.0f  exec %2.0f/%-2.0f   cache %4.0f entries   draining %s\n\n",
		cur.value("serve_queue_depth"), cur.value("serve_queue_capacity"),
		cur.value("serve_inflight_requests"), cur.value("serve_inflight_executions"),
		cur.value("serve_workers"), cur.value("serve_cache_entries"), draining)

	fmt.Fprintf(&sb, "%-10s %9s %9s %9s %9s\n", "phase", "count", "p50", "p95", "p99")
	rows := append([]string{}, phaseOrder...)
	for _, name := range rows {
		h := cur.hists[`serve_phase_seconds{phase="`+name+`"}`]
		if h == nil {
			continue
		}
		fmt.Fprintf(&sb, "%-10s %9.0f %9s %9s %9s\n", name, h.count,
			fmtSec(h.quantile(0.50)), fmtSec(h.quantile(0.95)), fmtSec(h.quantile(0.99)))
	}
	req := cur.hists["serve_request_seconds"]
	if req != nil {
		fmt.Fprintf(&sb, "%-10s %9.0f %9s %9s %9s\n\n", "request", req.count,
			fmtSec(req.quantile(0.50)), fmtSec(req.quantile(0.95)), fmtSec(req.quantile(0.99)))
		sb.WriteString(sloLine(req, prevHist(prev, "serve_request_seconds"), slo, sloTarget))
	}
	return sb.String()
}

func prevHist(prev *scrape, key string) *hist {
	if prev == nil {
		return nil
	}
	return prev.hists[key]
}

// sloLine renders SLO compliance and error-budget burn, cumulative and
// for the current window. Burn 1.0 means violations arrive exactly at
// the budgeted rate; above 1 the budget is being consumed faster.
func sloLine(req, prevReq *hist, slo time.Duration, targetPct float64) string {
	budget := 1 - targetPct/100
	if budget <= 0 {
		budget = 1e-9
	}
	line := func(label string, h *hist) string {
		if h == nil || h.count == 0 {
			return fmt.Sprintf("SLO %s @ %.4g%% [%s]: no traffic\n", slo, targetPct, label)
		}
		okFrac := h.countAtOrBelow(slo.Seconds()) / h.count
		burn := (1 - okFrac) / budget
		return fmt.Sprintf("SLO %s @ %.4g%% [%s]: %.2f%% within, burn %.2fx\n",
			slo, targetPct, label, 100*okFrac, burn)
	}
	out := line("total", req)
	if prevReq != nil {
		out += line("window", req.delta(prevReq))
	}
	return out
}

// fmtSec renders a seconds value with an adaptive unit.
func fmtSec(s float64) string {
	switch {
	case s <= 0:
		return "-"
	case s < 1e-3:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.1fms", s*1e3)
	}
	return fmt.Sprintf("%.2fs", s)
}
