// Command uud is the compile-as-a-service daemon: it exposes the
// repository's whole pipeline — MiniCU frontend, unmerge/unroll pipeline,
// VPTX codegen, SIMT simulation — behind a long-running HTTP/JSON API with
// bounded concurrency, per-request deadlines, panic isolation, load
// shedding, a content-addressed result cache, and graceful drain.
//
// Usage:
//
//	uud -addr :8077 -workers 8 -queue 16
//
//	curl -s localhost:8077/compile -d '{
//	  "app": "xsbench", "config": "uu", "loop": 0, "factor": 2,
//	  "device": "V100", "deadline_ms": 30000
//	}'
//
// Endpoints: POST /compile (append ?trace=1 for a request-scoped trace in
// the response), GET /stats (JSON, with per-phase latency quantiles), GET
// /metrics (Prometheus text exposition — point cmd/uutop or a scraper
// here), GET /trace (most recent sampled trace, or ?id=<request_id>), GET
// /healthz (liveness — 200 even while draining), GET /readyz (readiness —
// 503 once drain begins). SIGTERM/SIGINT stops intake (503 + Retry-After),
// finishes or cancels in-flight work by the drain deadline, flushes final
// stats, and exits 0. See docs/OBSERVABILITY.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"uu/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8077", "listen address")
		workers  = flag.Int("workers", 0, "compile/simulate pool size (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 0, "admission queue depth; a full queue sheds 429 (0 = 2*workers)")
		cacheN   = flag.Int("cache", 256, "result cache capacity (entries, LRU)")
		deadline = flag.Duration("deadline", 30*time.Second, "default per-request deadline")
		maxDl    = flag.Duration("max-deadline", 2*time.Minute, "cap on client-supplied deadlines")
		drainTO  = flag.Duration("drain-timeout", 15*time.Second, "how long SIGTERM waits for in-flight work before canceling it")
		quiet    = flag.Bool("q", false, "suppress lifecycle logging")

		traceSample = flag.Int("trace-sample", 0, "trace every N-th request into the GET /trace ring (1 = all, 0 = off)")
		accessLog   = flag.String("access-log", "", "write one JSON line per request to this file (\"-\" = stderr)")
		noTelemetry = flag.Bool("no-telemetry", false, "disable the metrics layer (GET /metrics returns 404)")
	)
	flag.Parse()

	opts := serve.Options{
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheEntries:     *cacheN,
		DefaultDeadline:  *deadline,
		MaxDeadline:      *maxDl,
		TraceSample:      *traceSample,
		DisableTelemetry: *noTelemetry,
	}
	if !*quiet {
		opts.Log = os.Stderr
	}
	switch *accessLog {
	case "":
	case "-":
		opts.AccessLog = os.Stderr
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "uud:", err)
			os.Exit(1)
		}
		defer f.Close()
		opts.AccessLog = f
	}
	s := serve.New(opts)

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "uud: listening on %s\n", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "uud:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process immediately

	fmt.Fprintf(os.Stderr, "uud: signal received, draining (timeout %s)\n", *drainTO)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	// Stop intake first (new requests see 503 while the listener winds
	// down), then let in-flight work finish or be canceled at the deadline.
	s.Drain(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "uud: shutdown:", err)
	}
	fmt.Fprintln(os.Stderr, "uud: drained, exiting")
}
