// Command uuopt compiles a MiniCU kernel (or textual IR) through one of the
// paper's five pipeline configurations and prints the result as IR, VPTX, or
// a Graphviz CFG.
//
// Usage:
//
//	uuopt -src kernel.cu [-config uu] [-loop 0] [-factor 2] [-emit ir|vptx|dot|loops]
//	uuopt -ir module.ll ...
//
// Examples:
//
//	uuopt -src bsearch.cu -config baseline -emit vptx
//	uuopt -src bsearch.cu -config uu -loop 0 -factor 2 -emit dot | dot -Tpdf > cfg.pdf
//
// Fuzzing mode runs generated kernels through the differential oracle
// (interpreter vs optimized interpreter vs simulator) across every pipeline
// configuration, exits nonzero on any miscompile or contained pass crash,
// and with -reduce writes minimized reproducers:
//
//	uuopt -fuzz 500 -seed 1 -verify-each -reduce
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"uu/internal/analysis"
	"uu/internal/codegen"
	"uu/internal/core"
	"uu/internal/dot"
	"uu/internal/harden/fuzz"
	"uu/internal/ir"
	"uu/internal/irparse"
	"uu/internal/lang"
	"uu/internal/pipeline"
	"uu/internal/remark"
	"uu/internal/transform"
)

func main() {
	var (
		srcPath   = flag.String("src", "", "MiniCU source file")
		irPath    = flag.String("ir", "", "textual IR file")
		config    = flag.String("config", "baseline", "pipeline config: baseline|unroll|unmerge|uu|uu-heuristic")
		loopID    = flag.Int("loop", 0, "loop id for per-loop configs")
		factor    = flag.Int("factor", 2, "unroll factor for unroll/uu")
		emit      = flag.String("emit", "ir", "output: ir|vptx|dot|loops|provenance")
		kernel    = flag.String("kernel", "", "kernel name when the module has several")
		direct    = flag.Bool("direct-successor", false, "unmerge only the minimal SSA-closed region (DBDS-style ablation)")
		noIfConv  = flag.Bool("no-ifconvert", false, "disable backend predication (ablation)")
		noOpt     = flag.Bool("O0", false, "skip the pipeline entirely (frontend output)")
		passTimes = flag.Bool("pass-times", false, "print per-pass wall-clock times")
		passStats = flag.Bool("pass-stats", false, "print the full pass log: per-pass time, changed bit, cache traffic, fixpoint rounds")
		remarks   = flag.String("remarks", "", "emit optimization remarks to stderr as a YAML document stream: all|passed|missed|analysis (comma-separable)")
		tracePath = flag.String("trace", "", "write a Chrome trace_event JSON of the compilation to this file (load in Perfetto or chrome://tracing)")

		fuzzN      = flag.Int("fuzz", 0, "run a differential fuzzing campaign over this many generated kernels, then exit")
		fuzzSeed   = flag.Int64("seed", 1, "first seed of the fuzzing campaign")
		fuzzDevice = flag.String("device", "", "fuzzing: pin the simulator legs to one device spec (e.g. Vortex, MinSPPC:warpsize=8, V100:exec=threaded); default exercises all three divergence policies and both execution backends")
		verifyEach = flag.Bool("verify-each", false, "fuzzing: run the IR verifier after every pass (contained)")
		reduce     = flag.Bool("reduce", false, "fuzzing: minimize each finding and write a reproducer")
		reproDir   = flag.String("repro-dir", filepath.Join("testdata", "repro"), "fuzzing: directory for minimized reproducers")
	)
	flag.Parse()

	if *fuzzN > 0 {
		os.Exit(runFuzz(*fuzzN, *fuzzSeed, *fuzzDevice, *verifyEach, *reduce, *reproDir))
	}

	f, err := loadFunction(*srcPath, *irPath, *kernel)
	if err != nil {
		fatal(err)
	}

	if *emit == "provenance" {
		// Figure 5 mode: canonicalize, apply u&u with clone-origin tracking,
		// and print the per-block condition provenance labels before the
		// cleanup passes fold them away.
		emitProvenance(f, *loopID, *factor)
		return
	}

	var remarkKinds map[remark.Kind]bool
	var collector *remark.Collector
	if *remarks != "" {
		kinds, err := remark.ParseKinds(*remarks)
		if err != nil {
			fatal(err)
		}
		remarkKinds = kinds
		collector = remark.NewCollector()
	}
	var trace *remark.Trace
	if *tracePath != "" {
		trace = remark.NewTrace()
	}

	if !*noOpt {
		opts := pipeline.Options{
			Config:           pipeline.Config(*config),
			LoopID:           *loopID,
			Factor:           *factor,
			DisableIfConvert: *noIfConv,
			VerifyEachPass:   true,
			Remarks:          collector,
			Trace:            trace,
		}
		opts.Unmerge.DirectSuccessorOnly = *direct
		stats, err := pipeline.Optimize(f, opts)
		if err != nil {
			fatal(err)
		}
		if *passTimes {
			for name, d := range stats.PassTimeByName() {
				fmt.Fprintf(os.Stderr, "%-20s %v\n", name, d)
			}
			fmt.Fprintf(os.Stderr, "%-20s %v\n", "total", stats.CompileTime)
		}
		if *passStats {
			printPassStats(stats)
		}
		for _, d := range stats.Decisions {
			fmt.Fprintf(os.Stderr, "heuristic: loop #%d (header %s): factor %d (p=%d s=%d f=%d)\n",
				d.LoopID, d.Header.Name, d.Factor, d.Paths, d.Size, d.Estimated)
		}
	}

	if collector != nil {
		if err := remark.WriteYAML(os.Stderr, collector.Remarks(), remarkKinds); err != nil {
			fatal(err)
		}
	}

	switch *emit {
	case "ir":
		fmt.Print(f.String())
	case "vptx":
		done := trace.Span(0, "codegen:"+f.Name, "codegen")
		p, err := codegen.Lower(f)
		done()
		if err != nil {
			fatal(err)
		}
		fmt.Print(p.String())
		fmt.Fprintf(os.Stderr, "code size: %d instructions, %d bytes\n", p.NumInstrs(), p.CodeBytes())
	case "dot":
		fmt.Print(dot.CFG(f, dot.Options{Instrs: true, Loops: true}))
	case "loops":
		dt := analysis.NewDomTree(f)
		li := analysis.NewLoopInfo(f, dt)
		for _, l := range li.Loops {
			tc := "-"
			if c, ok := analysis.ConstantTripCount(l); ok {
				tc = fmt.Sprint(c)
			}
			fmt.Printf("loop #%d: header=%s depth=%d blocks=%d paths=%d size=%d trip=%s convergent=%v\n",
				l.ID, l.Header.Name, l.Depth(), len(l.Blocks()),
				analysis.CountPaths(l), analysis.LoopSize(l), tc, l.HasConvergentOp())
		}
	default:
		fatal(fmt.Errorf("unknown -emit %q", *emit))
	}

	if trace != nil {
		if err := writeTrace(trace, *tracePath); err != nil {
			fatal(err)
		}
	}
}

// writeTrace dumps a recorded trace as Chrome trace_event JSON.
func writeTrace(tr *remark.Trace, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printPassStats writes the instrumented pass log to stderr: every pass
// execution in pipeline order with its wall-clock time, whether it changed
// the function, and its analysis-cache traffic, followed by the fixpoint
// round counts and the whole-compile cache summary.
func printPassStats(stats *pipeline.Stats) {
	fmt.Fprintf(os.Stderr, "%-24s %12s  %-7s %s\n", "pass", "time", "changed", "cache")
	for _, pt := range stats.PassTimes {
		changed := "-"
		if pt.Changed {
			changed = "yes"
		}
		cache := pt.Cache.String()
		if cache == "" {
			cache = "-"
		}
		fmt.Fprintf(os.Stderr, "%-24s %12v  %-7s %s\n", pt.Name, pt.Duration, changed, cache)
	}
	for _, r := range stats.Rounds {
		fmt.Fprintf(os.Stderr, "phase %-18s %d/%d rounds\n", r.Phase, r.Rounds, r.MaxRounds)
	}
	fmt.Fprintf(os.Stderr, "analysis cache: %d hits / %d misses (%.0f%% hit rate), %d invalidations\n",
		stats.Analysis.TotalHits(), stats.Analysis.TotalMisses(),
		100*stats.Analysis.HitRate(), stats.Analysis.TotalInvalidated())
	fmt.Fprintf(os.Stderr, "verify: %v   compile: %v\n", stats.VerifyTime, stats.CompileTime)
}

func loadFunction(srcPath, irPath, kernel string) (*ir.Function, error) {
	var m *ir.Module
	switch {
	case srcPath != "":
		data, err := os.ReadFile(srcPath)
		if err != nil {
			return nil, err
		}
		m, err = lang.Compile(string(data))
		if err != nil {
			return nil, err
		}
	case irPath != "":
		data, err := os.ReadFile(irPath)
		if err != nil {
			return nil, err
		}
		m, err = irparse.Parse(string(data))
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("one of -src or -ir is required")
	}
	if kernel != "" {
		f := m.FuncByName(kernel)
		if f == nil {
			return nil, fmt.Errorf("no kernel %q in module", kernel)
		}
		return f, nil
	}
	if len(m.Funcs()) != 1 {
		return nil, fmt.Errorf("module has %d kernels; pick one with -kernel", len(m.Funcs()))
	}
	return m.Funcs()[0], nil
}

// emitProvenance prints the paper's Figure 5 labels: each block of the
// unrolled-and-unmerged loop annotated with the implied truth value of every
// conditional branch of the original loop body.
func emitProvenance(f *ir.Function, loopID, factor int) {
	transform.Mem2Reg(f)
	transform.SimplifyCFG(f)
	transform.InstSimplify(f)
	transform.DCE(f)
	dt := analysis.NewDomTree(f)
	li := analysis.NewLoopInfo(f, dt)
	l := li.LoopByID(loopID)
	if l == nil {
		fatal(fmt.Errorf("no loop #%d", loopID))
	}
	var conds []*ir.Instr
	for _, b := range l.Blocks() {
		t := b.Term()
		if t == nil || t.Op != ir.OpCondBr {
			continue
		}
		if c, ok := t.Arg(0).(*ir.Instr); ok {
			conds = append(conds, c)
		}
	}
	origins := map[*ir.Instr]*ir.Instr{}
	if _, err := core.UnrollAndUnmerge(f, loopID, factor, core.Options{Origins: origins}); err != nil {
		fatal(err)
	}
	labels := core.ConditionProvenance(f, conds, origins)
	fmt.Println("conditions (label positions):")
	for i, c := range conds {
		fmt.Printf("  #%d: %s (in %s)"+"\n", i, c.String(), c.Block().Name)
	}
	fmt.Println()
	fmt.Println("per-block provenance:")
	for _, b := range f.Blocks() {
		fmt.Printf("  %-28s %s"+"\n", b.Name, labels[b])
	}
	fmt.Println()
	fmt.Print(dot.CFG(f, dot.Options{Loops: true, Labels: labels}))
}

// runFuzz executes the differential fuzzing campaign and returns the
// process exit code: 0 when every check was clean, 1 on any genuine
// differential mismatch or contained pass failure, 2 when the only
// problems were infrastructure failures — execution-budget exhaustion,
// decode errors, or the campaign itself erroring out. The split lets CI
// triage a red fuzz job without parsing logs: exit 1 means "a pass
// miscompiles", exit 2 means "the harness needs attention".
func runFuzz(count int, seed int64, device string, verifyEach, reduce bool, reproDir string) int {
	opts := fuzz.CampaignOptions{
		Count:      count,
		Seed:       seed,
		Device:     device,
		VerifyEach: verifyEach,
		Reduce:     reduce,
		Log:        os.Stderr,
	}
	if reduce {
		opts.ReproDir = reproDir
	}
	res, err := fuzz.RunCampaign(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uuopt:", err)
		return 2
	}
	mismatches, infra := res.Partition()
	fmt.Printf("fuzz: %d kernels, %d checks, %d refusals, %d findings (%d mismatches, %d infra), %d contained pass failures\n",
		res.Kernels, res.Checks, res.Refusals, len(res.Findings), mismatches, infra, len(res.Failures))
	for _, pf := range res.Failures {
		fmt.Printf("  contained: %s\n", pf.String())
	}
	for _, f := range res.Findings {
		class := "finding"
		if f.Div.Infra() {
			class = "infra"
		}
		fmt.Printf("  %s: %s\n", class, f.Div.String())
		if f.ReproPath != "" {
			fmt.Printf("    reproducer: %s (stop-after %d)\n", f.ReproPath, f.StopAfter)
		}
	}
	switch {
	case mismatches > 0 || len(res.Failures) > 0:
		return 1
	case infra > 0:
		return 2
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uuopt:", err)
	os.Exit(1)
}
