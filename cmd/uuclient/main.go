// Command uuclient is the load client for uud: it submits one compile
// request — or a concurrent batch of them — and reports per-request
// latency and outcome statistics. Shed (429) and drain (503) responses and
// transport errors are retried with the shared capped-exponential,
// full-jitter backoff (internal/harden.Backoff), honoring the server's
// Retry-After hint as a floor; structured 4xx/5xx outcomes are permanent
// and reported as such.
//
// Every response carries the server's request ID and per-phase timing
// attribution; uuclient reports the server-attributed totals next to the
// client-observed wall clock, so the skew (network + encode + client
// overhead) is visible at a glance, and -trace saves a server-side
// request trace for chrome://tracing.
//
// Usage:
//
//	uuclient -app xsbench -config uu -factor 2
//	uuclient -n 200 -c 8 -app complex -config uu-heuristic -summary out.json
//	uuclient -app xsbench -trace trace.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"uu/internal/harden"
	"uu/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", "http://localhost:8077", "uud base URL")
		app        = flag.String("app", "", "suite benchmark to compile (one of app/source-file/ir-file)")
		sourceFile = flag.String("source-file", "", "MiniCU source file to compile")
		irFile     = flag.String("ir-file", "", "textual IR file to compile")
		config     = flag.String("config", "baseline", "pipeline configuration")
		loop       = flag.Int("loop", 0, "loop id for per-loop configurations")
		factor     = flag.Int("factor", 0, "unroll factor")
		device     = flag.String("device", "V100", "device spec")
		grid       = flag.Int("grid", 0, "grid dim for source/ir kernels")
		block      = flag.Int("block", 0, "block dim for source/ir kernels")
		deadlineMs = flag.Int64("deadline-ms", 0, "per-request deadline (0 = server default)")
		selective  = flag.Bool("selective", false, "uu-heuristic: selective-unmerge mode")
		overrides  = flag.String("overrides", "", "uu-heuristic: per-loop profile overrides, e.g. L10:deny,L12:force+cap=2")
		chaos      = flag.String("chaos", "", "inject a chaos pass: panic, corrupt, or miscompile")
		contain    = flag.Bool("contain", false, "run passes under the containment guard")
		n          = flag.Int("n", 1, "total requests")
		c          = flag.Int("c", 1, "concurrent clients")
		attempts   = flag.Int("attempts", 5, "max tries per request (shed/transport retries)")
		seed       = flag.Int64("seed", 0, "backoff jitter seed (0 = nondeterministic)")
		summary    = flag.String("summary", "", "write the latency/outcome summary JSON to this file")
		traceOut   = flag.String("trace", "", "request a server-side trace (?trace=1) and write it to this file (single request only)")
		quiet      = flag.Bool("q", false, "suppress the single-request response dump")
	)
	flag.Parse()

	req := serve.Request{
		App: *app, Config: *config, Loop: *loop, Factor: *factor,
		Device: *device, Grid: *grid, Block: *block,
		DeadlineMs: *deadlineMs, Chaos: *chaos, Contain: *contain,
	}
	if *selective || *overrides != "" {
		req.Heuristic = &serve.HeuristicSpec{Selective: *selective, Overrides: *overrides}
	}
	if *sourceFile != "" {
		b, err := os.ReadFile(*sourceFile)
		if err != nil {
			fatal(err)
		}
		req.Source = string(b)
	}
	if *irFile != "" {
		b, err := os.ReadFile(*irFile)
		if err != nil {
			fatal(err)
		}
		req.IR = string(b)
	}
	body, err := json.Marshal(&req)
	if err != nil {
		fatal(err)
	}

	res := runLoad(*addr, body, *n, *c, *attempts, *seed, *traceOut != "")
	if *n == 1 && !*quiet && res.LastBody != "" {
		fmt.Println(res.LastBody)
	}
	fmt.Fprintf(os.Stderr, "uuclient: %d requests, %d ok (%d cached, %d coalesced), %d failed, %d retries; p50 %.1fms p99 %.1fms max %.1fms\n",
		res.Requests, res.OK, res.Cached, res.Coalesced, res.Failed, res.Retries, res.P50Ms, res.P99Ms, res.MaxMs)
	if res.OK > 0 && res.ServerP50Ms > 0 {
		// Server-attributed vs client-observed: the skew is network +
		// response encode + client-side overhead the server cannot see.
		fmt.Fprintf(os.Stderr, "uuclient: server-attributed p50 %.1fms p99 %.1fms; client-server skew p50 %.1fms p99 %.1fms\n",
			res.ServerP50Ms, res.ServerP99Ms, res.SkewP50Ms, res.SkewP99Ms)
	}
	if *n == 1 && res.LastPhases != nil {
		p := res.LastPhases
		fmt.Fprintf(os.Stderr, "uuclient: %s phases (ms): frontend %.2f resolve %.2f admission %.2f compile %.2f simulate %.2f | server total %.2f, client observed %.2f\n",
			res.LastRequestID, p.FrontendMs, p.ResolveMs, p.AdmissionMs, p.CompileMs, p.SimulateMs, p.TotalMs, res.MaxMs)
	}
	for code, count := range res.Errors {
		fmt.Fprintf(os.Stderr, "uuclient:   %s: %d\n", code, count)
	}
	if *traceOut != "" {
		if res.LastTrace == "" {
			fatal(fmt.Errorf("no trace in the response (need a 200 from a telemetry-enabled server)"))
		}
		if err := os.WriteFile(*traceOut, []byte(res.LastTrace), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "uuclient: trace written to %s\n", *traceOut)
	}
	if *summary != "" {
		b, _ := json.MarshalIndent(res, "", "  ")
		if err := os.WriteFile(*summary, b, 0o644); err != nil {
			fatal(err)
		}
	}
	if res.OK == 0 {
		os.Exit(1)
	}
}

// Summary is the machine-readable outcome of a load run. The client/server
// split: P*Ms are client-observed wall clocks (network and encode
// included); ServerP*Ms are the server-attributed totals from each
// response's "phases" block; SkewP*Ms their per-request difference — the
// time the server cannot account for (network, response encode, client
// overhead).
type Summary struct {
	Requests  int            `json:"requests"`
	OK        int            `json:"ok"`
	Failed    int            `json:"failed"`
	Cached    int            `json:"cached"`
	Coalesced int            `json:"coalesced"`
	Retries   int            `json:"retries"`
	Errors    map[string]int `json:"errors,omitempty"` // structured code → count
	P50Ms     float64        `json:"p50_ms"`
	P99Ms     float64        `json:"p99_ms"`
	MaxMs     float64        `json:"max_ms"`

	ServerP50Ms float64 `json:"server_p50_ms,omitempty"`
	ServerP99Ms float64 `json:"server_p99_ms,omitempty"`
	SkewP50Ms   float64 `json:"skew_p50_ms,omitempty"`
	SkewP99Ms   float64 `json:"skew_p99_ms,omitempty"`

	LastBody      string        `json:"-"`
	LastPhases    *serve.Phases `json:"-"`
	LastRequestID string        `json:"-"`
	LastTrace     string        `json:"-"`
}

// outcome is one request's final result after retries.
type outcome struct {
	ok        bool
	cached    bool
	coalesced bool
	code      string
	retries   int
	ms        float64
	body      string
	requestID string
	phases    *serve.Phases
	trace     string
}

// runLoad fires n copies of body at the server over c workers, retrying
// shed/transport failures with jittered backoff, and aggregates outcomes.
func runLoad(addr string, body []byte, n, c, attempts int, seed int64, wantTrace bool) *Summary {
	outcomes := make([]outcome, n)
	var idx int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	client := &http.Client{}
	if c < 1 {
		c = 1
	}
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			bo := harden.DefaultBackoff()
			bo.Attempts = attempts
			if seed != 0 {
				// Per-worker deterministic jitter for reproducible drills.
				bo.Rand = rand.New(rand.NewSource(seed + int64(worker)))
			}
			for {
				mu.Lock()
				i := int(idx)
				idx++
				mu.Unlock()
				if i >= n {
					return
				}
				outcomes[i] = fire(client, addr, body, bo, wantTrace)
			}
		}(w)
	}
	wg.Wait()

	res := &Summary{Requests: n, Errors: map[string]int{}}
	var lat, srv, skew []float64
	for _, o := range outcomes {
		res.Retries += o.retries
		if o.ok {
			res.OK++
			lat = append(lat, o.ms)
			if o.cached {
				res.Cached++
			}
			if o.coalesced {
				res.Coalesced++
			}
			if o.phases != nil {
				srv = append(srv, o.phases.TotalMs)
				skew = append(skew, o.ms-o.phases.TotalMs)
			}
			res.LastBody, res.LastPhases, res.LastRequestID = o.body, o.phases, o.requestID
			if o.trace != "" {
				res.LastTrace = o.trace
			}
		} else {
			res.Failed++
			res.Errors[o.code]++
		}
	}
	pct := func(vals []float64, p float64) float64 {
		if len(vals) == 0 {
			return 0
		}
		sort.Float64s(vals)
		return vals[int(p*float64(len(vals)-1))]
	}
	res.P50Ms, res.P99Ms = pct(lat, 0.50), pct(lat, 0.99)
	if len(lat) > 0 {
		res.MaxMs = lat[len(lat)-1]
	}
	res.ServerP50Ms, res.ServerP99Ms = pct(srv, 0.50), pct(srv, 0.99)
	res.SkewP50Ms, res.SkewP99Ms = pct(skew, 0.50), pct(skew, 0.99)
	return res
}

// attemptState tracks the server's Retry-After hint across one request's
// attempts, used as a floor under the jittered backoff delay.
type attemptState struct {
	retryAfter time.Duration
}

// fire issues one request with retries. Shed (429), drain (503), and
// transport errors are retryable; everything else — including structured
// compile failures, panics (500), and deadline expiry (504) — is permanent.
func fire(client *http.Client, addr string, body []byte, bo harden.Backoff, wantTrace bool) (o outcome) {
	var st attemptState
	sleep := bo.Sleep
	bo.Sleep = func(d time.Duration) {
		if st.retryAfter > d {
			d = st.retryAfter
		}
		if sleep != nil {
			sleep(d)
			return
		}
		time.Sleep(d)
	}
	attempt := 0
	start := time.Now()
	err := bo.Retry(nil, func(err error) bool {
		_, retryable := err.(*transientError)
		return retryable
	}, func() error {
		attempt++
		url := addr + "/compile"
		if wantTrace {
			url += "?trace=1"
		}
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			o.code = "transport"
			return &transientError{err.Error()}
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode == 200 {
			var r serve.Response
			if jerr := json.Unmarshal(data, &r); jerr == nil {
				o.cached, o.coalesced = r.Cached, r.Coalesced
				o.requestID, o.phases, o.trace = r.RequestID, r.Phases, r.TraceJSON
			}
			o.ok, o.body = true, string(data)
			return nil
		}
		var e serve.Error
		if jerr := json.Unmarshal(data, &e); jerr != nil || e.Code == "" {
			e.Code = fmt.Sprintf("http-%d", resp.StatusCode)
		}
		o.code = e.Code
		if resp.StatusCode == 429 || resp.StatusCode == 503 {
			if secs, aerr := strconv.Atoi(resp.Header.Get("Retry-After")); aerr == nil {
				st.retryAfter = time.Duration(secs) * time.Second
			}
			return &transientError{e.Code}
		}
		return fmt.Errorf("%s: %s", e.Code, e.Msg)
	})
	o.retries = attempt - 1
	o.ms = float64(time.Since(start).Microseconds()) / 1e3
	o.ok = o.ok && err == nil
	return o
}

type transientError struct{ msg string }

func (e *transientError) Error() string { return e.msg }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uuclient:", err)
	os.Exit(1)
}
