// Command uurun compiles one of the suite's benchmarks (or a MiniCU source
// with an explicit workload description) through a pipeline configuration
// and executes it on the SIMT simulator, printing the nvprof-style metrics.
//
// Usage:
//
//	uurun -bench xsbench [-config uu -loop 0 -factor 2] [-verify]
//	uurun -bench bezier-surface -config uu-heuristic -profile prof/bezier
//	uurun -src axpy.cu -args i:0,i:800,f:3.0,i:100 -mem 1024 -grid 2 -block 64
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"uu/internal/bench"
	"uu/internal/codegen"
	"uu/internal/core"
	"uu/internal/gpusim"
	"uu/internal/interp"
	"uu/internal/lang"
	"uu/internal/pipeline"
	"uu/internal/profile"
	"uu/internal/remark"
)

func main() {
	var (
		benchName = flag.String("bench", "", "suite benchmark name (see -list)")
		list      = flag.Bool("list", false, "list suite benchmarks")
		srcPath   = flag.String("src", "", "MiniCU source file (with -args/-mem/-grid/-block)")
		argsSpec  = flag.String("args", "", "kernel arguments, comma-separated i:<int> / f:<float>")
		memSize   = flag.Int64("mem", 1<<20, "device memory bytes (with -src)")
		grid      = flag.Int("grid", 1, "grid dimension (with -src)")
		block     = flag.Int("block", 32, "block dimension (with -src)")
		config    = flag.String("config", "baseline", "pipeline config")
		device    = flag.String("device", "V100", "device model: registry name with optional overrides, e.g. V100, MinSPPC, Vortex:warpsize=8")
	execStr   = flag.String("exec", "", "simulator execution backend: switch or threaded (default: the device's; metrics are identical for either)")
		inputMode = flag.String("input", "coherent", "workload input mode (suite benchmarks only): coherent or noise")
		loopID    = flag.Int("loop", 0, "loop id for per-loop configs")
		factor    = flag.Int("factor", 2, "unroll factor")
		verify     = flag.Bool("verify", false, "check results against the reference interpreter (suite benchmarks only)")
		tracePath  = flag.String("trace", "", "write a Chrome trace_event JSON of the compile and simulation to this file")
		remarksStr = flag.String("remarks", "", "print optimization remarks to stderr as YAML: all|passed|missed|analysis (comma-separable)")
		profPrefix = flag.String("profile", "", "collect a per-PC hotspot profile and write <prefix>.hotspots.txt, <prefix>.folded and <prefix>.pb.gz")
		selective  = flag.Bool("selective", false, "uu-heuristic: selective-unmerge mode (only benefit-predicted merge blocks are duplicated)")
		overrides  = flag.String("overrides", "", "uu-heuristic: per-loop profile overrides, e.g. L10:deny,L12:force+cap=2 — the profile-guided path a PGO driver (uubench -pgo) derives")
	)
	flag.Parse()

	if *list {
		for _, b := range bench.Suite {
			fmt.Printf("%-16s %-30s loops=%d\n", b.Name, b.Category, bench.LoopCount(b))
		}
		return
	}

	var remarkKinds map[remark.Kind]bool
	var collector *remark.Collector
	if *remarksStr != "" {
		kinds, err := remark.ParseKinds(*remarksStr)
		if err != nil {
			fatal(err)
		}
		remarkKinds = kinds
		collector = remark.NewCollector()
	}
	writeRemarks := func() {
		if collector == nil {
			return
		}
		if err := remark.WriteYAML(os.Stderr, collector.Remarks(), remarkKinds); err != nil {
			fatal(err)
		}
	}

	var trace *remark.Trace
	if *tracePath != "" {
		trace = remark.NewTrace()
	}
	writeTrace := func() {
		if trace == nil {
			return
		}
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	opts := pipeline.Options{
		Config:  pipeline.Config(*config),
		LoopID:  *loopID,
		Factor:  *factor,
		Trace:   trace,
		Remarks: collector,
	}
	if *selective || *overrides != "" {
		if opts.Config != pipeline.UUHeuristic {
			fatal(fmt.Errorf("-selective/-overrides require -config %s", pipeline.UUHeuristic))
		}
		ov, err := core.ParseOverrides(*overrides)
		if err != nil {
			fatal(err)
		}
		opts.Heuristic = core.HeuristicParams{Selective: *selective, Overrides: ov}
	}
	dev, devName, err := gpusim.ParseDevice(*device)
	if err != nil {
		fatal(err)
	}
	if *execStr != "" {
		exec, err := gpusim.ParseExec(*execStr)
		if err != nil {
			fatal(err)
		}
		dev.Exec = exec
	}
	input, err := bench.ParseInputMode(*inputMode)
	if err != nil {
		fatal(err)
	}

	if *benchName != "" {
		b := bench.ByName(*benchName)
		if b == nil {
			fatal(fmt.Errorf("unknown benchmark %q (use -list)", *benchName))
		}
		w := b.NewWorkload()
		w.SetInput(input)
		fmt.Printf("device                 %s\n", devName)
		cr, err := bench.Compile(b, opts)
		if err != nil {
			fatal(err)
		}
		var ref *interp.Memory
		if *verify {
			if ref, err = bench.Reference(b, w); err != nil {
				fatal(err)
			}
		}
		var prof *gpusim.Profile
		if *profPrefix != "" {
			prof = gpusim.NewProfile(cr.Program)
		}
		m, err := bench.ExecuteWorkersProfiled(cr, w, dev, ref, 1, trace, 0, prof)
		if err != nil {
			fatal(err)
		}
		if *verify {
			fmt.Println("verification: OK")
		}
		report(m, dev, cr.Program)
		if prof != nil {
			writeProfile(*profPrefix, cr.Program, prof, cr.Stats.Decisions, cr.Stats.Skips)
		}
		writeRemarks()
		writeTrace()
		return
	}

	if *srcPath == "" {
		fatal(fmt.Errorf("one of -bench or -src is required"))
	}
	data, err := os.ReadFile(*srcPath)
	if err != nil {
		fatal(err)
	}
	m, err := lang.Compile(string(data))
	if err != nil {
		fatal(err)
	}
	if len(m.Funcs()) != 1 {
		fatal(fmt.Errorf("source must contain exactly one kernel"))
	}
	f := m.Funcs()[0]
	stats, err := pipeline.Optimize(f, opts)
	if err != nil {
		fatal(err)
	}
	done := trace.Span(0, "codegen:"+f.Name, "codegen")
	prog, err := codegen.Lower(f)
	done()
	if err != nil {
		fatal(err)
	}
	args, err := parseArgs(*argsSpec)
	if err != nil {
		fatal(err)
	}
	var prof *gpusim.Profile
	if *profPrefix != "" {
		prof = gpusim.NewProfile(prog)
	}
	mem := interp.NewMemory(*memSize)
	metrics, err := gpusim.RunWorkersProfiled(prog, args, mem, gpusim.Launch{GridDim: *grid, BlockDim: *block}, dev, 1, trace, 0, prof)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("device                 %s\n", devName)
	report(metrics, dev, prog)
	if prof != nil {
		writeProfile(*profPrefix, prog, prof, stats.Decisions, stats.Skips)
	}
	writeRemarks()
	writeTrace()
}

// writeProfile renders the hotspot profile as <prefix>.hotspots.txt (tables
// plus, for heuristic runs, the predicted-vs-measured join), <prefix>.folded
// (flamegraph folded stacks) and <prefix>.pb.gz (pprof protobuf).
func writeProfile(prefix string, prog *codegen.Program, prof *gpusim.Profile, decisions []core.Decision, skips []core.SkipRecord) {
	if dir := filepath.Dir(prefix); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
	}
	rep := profile.Build(prog, prof)
	write := func(suffix string, render func(f *os.File) error) {
		f, err := os.Create(prefix + suffix)
		if err != nil {
			fatal(err)
		}
		if err := render(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	write(".hotspots.txt", func(f *os.File) error {
		if err := profile.WriteHotspots(f, rep); err != nil {
			return err
		}
		if len(decisions) > 0 {
			fmt.Fprintln(f)
			return profile.WritePrediction(f, rep, decisions, skips, core.DefaultHeuristicParams().C)
		}
		return nil
	})
	write(".folded", func(f *os.File) error { return profile.WriteFolded(f, rep) })
	write(".pb.gz", func(f *os.File) error { return profile.WritePprof(f, rep) })
	fmt.Printf("profile                %s.{hotspots.txt,folded,pb.gz}\n", prefix)
}

func parseArgs(spec string) ([]interp.Value, error) {
	if spec == "" {
		return nil, nil
	}
	var out []interp.Value
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		switch {
		case strings.HasPrefix(part, "i:"):
			v, err := strconv.ParseInt(part[2:], 0, 64)
			if err != nil {
				return nil, fmt.Errorf("bad int arg %q", part)
			}
			out = append(out, interp.IntVal(v))
		case strings.HasPrefix(part, "f:"):
			v, err := strconv.ParseFloat(part[2:], 64)
			if err != nil {
				return nil, fmt.Errorf("bad float arg %q", part)
			}
			out = append(out, interp.FloatVal(v))
		default:
			return nil, fmt.Errorf("argument %q must be i:<int> or f:<float>", part)
		}
	}
	return out, nil
}

func report(m *gpusim.Metrics, dev gpusim.DeviceConfig, p *codegen.Program) {
	fmt.Printf("kernel                 %s\n", p.Name)
	fmt.Printf("kernel time            %.6f ms\n", m.KernelMillis(dev))
	fmt.Printf("cycles                 %d\n", m.Cycles)
	fmt.Printf("warps                  %d\n", m.Warps)
	fmt.Printf("warp instructions      %d\n", m.WarpInstrs)
	fmt.Printf("thread instructions    %d\n", m.ThreadInstrs)
	fmt.Printf("  inst_compute         %d\n", m.ClassThread[codegen.ClassCompute])
	fmt.Printf("  inst_misc            %d\n", m.ClassThread[codegen.ClassMisc])
	fmt.Printf("  inst_control         %d\n", m.ClassThread[codegen.ClassControl])
	fmt.Printf("  inst_memory          %d\n", m.ClassThread[codegen.ClassMemory])
	fmt.Printf("gld_transactions       %d (%d bytes)\n", m.GldTransactions, m.GldBytes)
	fmt.Printf("gst_transactions       %d (%d bytes)\n", m.GstTransactions, m.GstBytes)
	fmt.Printf("warp_execution_eff     %.2f%%\n", m.WarpExecutionEfficiency(dev)*100)
	fmt.Printf("stall_inst_fetch       %.2f%%\n", m.StallInstFetchPct()*100)
	fmt.Printf("IPC                    %.3f\n", m.IPC())
	fmt.Printf("code size              %d bytes (%d instructions)\n", p.CodeBytes(), p.NumInstrs())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uurun:", err)
	os.Exit(1)
}
