module uu

go 1.22
