// Package uu is a from-scratch Go reproduction of "Enhancing Performance
// through Control-Flow Unmerging and Loop Unrolling on GPUs" (CGO 2024).
//
// The implementation lives under internal/: an SSA IR and optimization
// pipeline (internal/ir, internal/analysis, internal/transform), the paper's
// unroll-and-unmerge transformation and heuristic (internal/core), a
// CUDA-like kernel language (internal/lang), a PTX-like backend
// (internal/codegen), a SIMT GPU simulator (internal/gpusim), and the
// 16-benchmark evaluation harness (internal/bench). The cmd/ binaries and
// examples/ programs drive them; bench_test.go regenerates every table and
// figure of the paper's evaluation as Go benchmarks.
package uu
